//! Round-trip test: export a synthetic event stream with
//! [`bm_trace::chrome_trace`] and re-read it with the independent
//! [`bm_trace::json`] parser, checking the structural invariants
//! Perfetto relies on: valid JSON, non-decreasing `ts`, and matched
//! `B`/`E` pairs per track.

use bm_trace::json::{parse, Value};
use bm_trace::{chrome_trace, BatchReason, EventKind, RejectReason, TraceEvent};

/// A small but representative run: two workers, three requests (one
/// batched across tasks, one cancelled, one rejected), with pins,
/// a migration and an expiry.
fn synthetic_events() -> Vec<TraceEvent> {
    fn ev(ts_us: u64, kind: EventKind) -> TraceEvent {
        TraceEvent { ts_us, kind }
    }
    vec![
        ev(
            10,
            EventKind::RequestArrived {
                request: 1,
                nodes: 4,
                subgraphs: 1,
            },
        ),
        ev(
            12,
            EventKind::RequestArrived {
                request: 2,
                nodes: 2,
                subgraphs: 1,
            },
        ),
        ev(
            13,
            EventKind::RequestRejected {
                request: 3,
                reason: RejectReason::AtCapacity,
            },
        ),
        ev(
            15,
            EventKind::NodesEnqueued {
                request: 1,
                subgraph: 0,
                cell_type: 0,
                count: 2,
            },
        ),
        ev(
            20,
            EventKind::BatchFormed {
                task: 100,
                worker: 0,
                cell_type: 0,
                batch: 2,
                reason: BatchReason::Saturation,
                gather_rows: 2,
                transfer_rows: 0,
                requests: vec![1, 2],
            },
        ),
        ev(
            20,
            EventKind::SubgraphPinned {
                subgraph: 0,
                request: 1,
                worker: 0,
            },
        ),
        ev(
            21,
            EventKind::TaskStarted {
                task: 100,
                worker: 0,
            },
        ),
        ev(
            40,
            EventKind::TaskCompleted {
                task: 100,
                worker: 0,
            },
        ),
        ev(
            41,
            EventKind::SubgraphMigrated {
                subgraph: 0,
                request: 1,
                from: 0,
                to: 1,
                rows: 2,
            },
        ),
        ev(
            45,
            EventKind::BatchFormed {
                task: 101,
                worker: 1,
                cell_type: 1,
                batch: 1,
                reason: BatchReason::Starvation,
                gather_rows: 1,
                transfer_rows: 1,
                requests: vec![1],
            },
        ),
        ev(
            46,
            EventKind::TaskStarted {
                task: 101,
                worker: 1,
            },
        ),
        // Zero-duration slice: completes at the same instant it starts.
        ev(
            46,
            EventKind::TaskCompleted {
                task: 101,
                worker: 1,
            },
        ),
        ev(
            50,
            EventKind::CancelRequested {
                request: 2,
                dropped_nodes: 1,
                draining: false,
            },
        ),
        ev(
            50,
            EventKind::RequestCompleted {
                request: 2,
                executed: 1,
                total: 2,
                cancelled: true,
            },
        ),
        ev(55, EventKind::RequestExpired { request: 4 }),
        ev(
            60,
            EventKind::RequestCompleted {
                request: 1,
                executed: 4,
                total: 4,
                cancelled: false,
            },
        ),
    ]
}

fn trace_events(doc: &Value) -> &[Value] {
    doc.get("traceEvents")
        .expect("traceEvents key")
        .as_arr()
        .expect("traceEvents is an array")
}

#[test]
fn exporter_output_parses_as_json() {
    let json = chrome_trace(&synthetic_events());
    let doc = parse(&json).expect("exporter output must be valid JSON");
    let evs = trace_events(&doc);
    assert!(!evs.is_empty(), "exporter emitted no events");
    for e in evs {
        assert!(e.get("ph").is_some(), "every event carries a phase: {e:?}");
        assert!(e.get("pid").is_some(), "every event carries a pid: {e:?}");
        assert!(e.get("tid").is_some(), "every event carries a tid: {e:?}");
    }
}

#[test]
fn timestamps_are_monotonic() {
    let json = chrome_trace(&synthetic_events());
    let doc = parse(&json).expect("valid JSON");
    // Metadata (`ph: "M"`) events carry no `ts`; every other event must,
    // and in file order those timestamps never decrease.
    let mut last = 0u64;
    for e in trace_events(&doc) {
        let ph = e.get("ph").unwrap().as_str().unwrap();
        match e.get("ts") {
            None => assert_eq!(ph, "M", "only metadata may omit ts, got {ph:?}"),
            Some(ts) => {
                let ts = ts.as_u64().expect("ts is a non-negative integer");
                assert!(ts >= last, "ts went backwards: {ts} after {last}");
                last = ts;
            }
        }
    }
}

#[test]
fn begin_end_pairs_match_per_track() {
    let json = chrome_trace(&synthetic_events());
    let doc = parse(&json).expect("valid JSON");
    // Walk each track's B/E events in file order as a stack discipline:
    // every E closes the most recent open B on the same tid, and no
    // slices remain open at the end.
    let mut depth: std::collections::HashMap<u64, i64> = std::collections::HashMap::new();
    let mut slices = 0;
    for e in trace_events(&doc) {
        let ph = e.get("ph").unwrap().as_str().unwrap();
        if ph != "B" && ph != "E" {
            continue;
        }
        let tid = e.get("tid").unwrap().as_u64().unwrap();
        let d = depth.entry(tid).or_insert(0);
        if ph == "B" {
            *d += 1;
            slices += 1;
        } else {
            *d -= 1;
            assert!(*d >= 0, "E without a matching open B on tid {tid}");
        }
    }
    assert_eq!(slices, 2, "both executed tasks become slices");
    for (tid, d) in depth {
        assert_eq!(d, 0, "unclosed slice on tid {tid}");
    }
}

#[test]
fn tracks_reasons_and_flows_survive_round_trip() {
    let json = chrome_trace(&synthetic_events());
    let doc = parse(&json).expect("valid JSON");
    let evs = trace_events(&doc);

    // One named track per worker plus the scheduler track.
    let mut thread_names: Vec<String> = evs
        .iter()
        .filter(|e| {
            e.get("ph").unwrap().as_str() == Some("M")
                && e.get("name").unwrap().as_str() == Some("thread_name")
        })
        .map(|e| {
            e.get("args")
                .unwrap()
                .get("name")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string()
        })
        .collect();
    thread_names.sort();
    assert_eq!(thread_names, ["scheduler", "worker 0", "worker 1"]);

    // Batch-formation reasons survive on both the slice and the instant.
    let reason_of = |ph: &str, task: u64| -> Option<String> {
        evs.iter().find_map(|e| {
            if e.get("ph").unwrap().as_str() != Some(ph) {
                return None;
            }
            let args = e.get("args")?;
            if args.get("task")?.as_u64() != Some(task) {
                return None;
            }
            Some(args.get("reason")?.as_str()?.to_string())
        })
    };
    assert_eq!(reason_of("B", 100).as_deref(), Some("saturation"));
    assert_eq!(reason_of("i", 100).as_deref(), Some("saturation"));
    assert_eq!(reason_of("B", 101).as_deref(), Some("starvation"));

    // Request 1 spans two tasks, so its flow chain has a start, a step
    // and a finish, all sharing the flow id.
    let flow_phases: Vec<&str> = evs
        .iter()
        .filter(|e| e.get("id").and_then(Value::as_u64) == Some(1))
        .map(|e| e.get("ph").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(flow_phases, ["s", "t", "f"]);
}
