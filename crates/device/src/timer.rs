//! Wall-clock timing helper for the real (CPU) runtime.

use std::time::Instant;

/// A monotonically increasing microsecond clock anchored at creation.
///
/// The real-time runtime stamps request arrival/start/completion with
/// this clock so its measurements are directly comparable with the
/// simulator's virtual microseconds.
#[derive(Debug, Clone)]
pub struct CpuTimer {
    origin: Instant,
}

impl CpuTimer {
    /// Creates a timer anchored at "now".
    pub fn new() -> Self {
        CpuTimer {
            origin: Instant::now(),
        }
    }

    /// Microseconds elapsed since creation.
    pub fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

impl Default for CpuTimer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let t = CpuTimer::new();
        let a = t.now_us();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = t.now_us();
        assert!(b > a);
        assert!(b - a >= 1_000);
    }
}
