//! The calibrated GPU kernel-time model.

use bm_cell::Cell;

/// Timing model of one GPU device, calibrated against Figure 3.
///
/// The kernel time for executing a cell at batch size `b` is
///
/// ```text
/// t(b) = (floor^p + (flops(b) / rate)^p)^(1/p)
/// ```
///
/// a smooth maximum of a fixed floor (launch + memory-bound region) and
/// a compute-bound linear term. With the V100 preset this yields, for
/// the paper's LSTM cell (hidden 1024):
///
/// | batch | model | paper (Fig. 3) |
/// |------:|------:|---------------:|
/// |    64 | ~155 µs | ~185 µs |
/// |   512 | ~790 µs | ~784 µs |
/// |  1024 | ~1.57 ms | ~1.6 ms |
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuCostModel {
    /// Saturated compute rate, FLOPs per microsecond.
    pub flops_per_us: f64,
    /// Per-kernel-sequence floor in µs (launch + memory bound region).
    pub kernel_floor_us: f64,
    /// Smooth-max exponent.
    pub smooth_p: f64,
    /// Extra gap when a task's kernels are launched individually rather
    /// than pre-queued behind an in-flight task (§5 "keeping the GPU
    /// busy").
    pub launch_gap_us: f64,
    /// Gather cost per state row copied into a contiguous batch (§4.3).
    pub gather_us_per_row: f64,
    /// Cross-device copy cost per state row (NVLink transfer, §4.3).
    pub transfer_us_per_row: f64,
    /// Completion-notification delay: the signaling kernel plus the
    /// worker's polling loop (§5 "asynchronous completion notification").
    pub completion_poll_us: f64,
    /// Host-side scheduling overhead charged per task (§7.3 measures
    /// ~65 µs of "scheduling and gathering overhead" per step).
    pub sched_overhead_us: f64,
}

/// The priced components of one batched task execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskCost {
    /// Kernel execution time, µs.
    pub kernel_us: f64,
    /// Gather memcpy time, µs.
    pub gather_us: f64,
    /// Cross-device transfer time, µs.
    pub transfer_us: f64,
    /// Host scheduling overhead, µs.
    pub overhead_us: f64,
}

impl TaskCost {
    /// Total device occupancy of the task, µs.
    pub fn total_us(&self) -> f64 {
        self.kernel_us + self.gather_us + self.transfer_us + self.overhead_us
    }
}

impl GpuCostModel {
    /// The V100 preset calibrated against Figure 3 (bottom).
    pub fn v100() -> Self {
        GpuCostModel {
            // 512 × 16.9 MFLOP in 784 µs  =>  ~11 MFLOP/µs (11 TFLOPS).
            flops_per_us: 11.0e6,
            kernel_floor_us: 150.0,
            smooth_p: 4.0,
            launch_gap_us: 10.0,
            gather_us_per_row: 0.08,
            transfer_us_per_row: 0.4,
            completion_poll_us: 5.0,
            sched_overhead_us: 55.0,
        }
    }

    /// Kernel time for `cell` at batch size `batch`, µs.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn kernel_time_us(&self, cell: &Cell, batch: usize) -> f64 {
        assert!(batch > 0, "zero batch");
        let compute = cell.flops(batch) as f64 / self.flops_per_us;
        self.smooth_max(self.kernel_floor_us, compute)
    }

    /// Kernel time from a raw FLOP count, µs (used by baselines pricing
    /// merged graphs without a concrete `Cell`).
    pub fn kernel_time_from_flops(&self, flops: u64) -> f64 {
        self.smooth_max(self.kernel_floor_us, flops as f64 / self.flops_per_us)
    }

    fn smooth_max(&self, a: f64, b: f64) -> f64 {
        let p = self.smooth_p;
        (a.powf(p) + b.powf(p)).powf(1.0 / p)
    }

    /// Prices one batched task.
    ///
    /// `gather_rows` is the number of state rows copied to form a
    /// contiguous input (0 when the batch composition is unchanged from
    /// the previous task of this subgraph set); `transfer_rows` is the
    /// number of rows moved from another device.
    pub fn task_cost(
        &self,
        cell: &Cell,
        batch: usize,
        gather_rows: usize,
        transfer_rows: usize,
    ) -> TaskCost {
        self.task_cost_from_flops(cell.flops(batch), gather_rows, transfer_rows)
    }

    /// Prices one batched task from a raw FLOP count (used with
    /// [`crate::CostProfile`] so small test models can be priced at
    /// paper scale).
    pub fn task_cost_from_flops(
        &self,
        flops: u64,
        gather_rows: usize,
        transfer_rows: usize,
    ) -> TaskCost {
        TaskCost {
            kernel_us: self.kernel_time_from_flops(flops),
            gather_us: gather_rows as f64 * self.gather_us_per_row,
            transfer_us: transfer_rows as f64 * self.transfer_us_per_row,
            overhead_us: self.sched_overhead_us,
        }
    }

    /// Single-step latency/throughput curve across batch sizes — the
    /// Figure 3 regeneration. Returns `(batch, exec_us, ops_per_sec)`
    /// rows.
    pub fn figure3_curve(&self, cell: &Cell, batches: &[usize]) -> Vec<(usize, f64, f64)> {
        batches
            .iter()
            .map(|&b| {
                let t = self.kernel_time_us(cell, b);
                (b, t, b as f64 / (t / 1e6))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bm_cell::LstmCell;

    fn lstm1024() -> Cell {
        // Shapes are all that matter for FLOPs; tiny vocab keeps
        // construction cheap.
        Cell::Lstm(LstmCell::seeded(1024, 1024, 4, 1))
    }

    #[test]
    fn matches_figure3_anchors() {
        let m = GpuCostModel::v100();
        let c = lstm1024();
        let t64 = m.kernel_time_us(&c, 64);
        let t512 = m.kernel_time_us(&c, 512);
        let t1024 = m.kernel_time_us(&c, 1024);
        // Flat region: within 25 % of the paper's ~185 µs at b = 64.
        assert!((140.0..220.0).contains(&t64), "t64 = {t64}");
        // Sweet spot: ~784 µs at b = 512.
        assert!((700.0..900.0).contains(&t512), "t512 = {t512}");
        // Compute bound: doubling batch doubles time (within 10 %).
        assert!((t1024 / t512 - 2.0).abs() < 0.2, "ratio {}", t1024 / t512);
    }

    #[test]
    fn flat_region_is_flat() {
        let m = GpuCostModel::v100();
        let c = lstm1024();
        let t2 = m.kernel_time_us(&c, 2);
        let t64 = m.kernel_time_us(&c, 64);
        assert!(t64 / t2 < 1.15, "flat region not flat: {t2} -> {t64}");
    }

    #[test]
    fn throughput_peaks_at_large_batch() {
        let m = GpuCostModel::v100();
        let c = lstm1024();
        let curve = m.figure3_curve(&c, &[2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048]);
        // Throughput strictly improves up to 512.
        for w in curve.windows(2) {
            if w[1].0 <= 512 {
                assert!(w[1].2 > w[0].2, "throughput dip at {}", w[1].0);
            }
        }
        // And is near-flat beyond 512 (within 10 %).
        let t512 = curve.iter().find(|r| r.0 == 512).unwrap().2;
        let t2048 = curve.iter().find(|r| r.0 == 2048).unwrap().2;
        assert!((t2048 - t512).abs() / t512 < 0.10);
    }

    #[test]
    fn task_cost_components_add_up() {
        let m = GpuCostModel::v100();
        let c = lstm1024();
        let cost = m.task_cost(&c, 64, 64, 10);
        assert!(cost.gather_us > 0.0 && cost.transfer_us > 0.0);
        assert!(
            (cost.total_us()
                - (cost.kernel_us + cost.gather_us + cost.transfer_us + cost.overhead_us))
                .abs()
                < 1e-9
        );
        let clean = m.task_cost(&c, 64, 0, 0);
        assert!(clean.total_us() < cost.total_us());
    }

    #[test]
    #[should_panic]
    fn zero_batch_panics() {
        let m = GpuCostModel::v100();
        let _ = m.kernel_time_us(&lstm1024(), 0);
    }

    #[test]
    fn decoder_costs_more_than_encoder() {
        use bm_cell::{DecoderCell, EncoderCell};
        let m = GpuCostModel::v100();
        let enc = Cell::Encoder(EncoderCell::seeded(1024, 1024, 4, 1));
        // FLOPs depend on the projection width; build a decoder whose
        // vocab matches the paper's 30k without materializing the full
        // embedding: use vocab 30_000 but tiny embed for test speed is
        // not possible (embed width is the model dim), so use a scaled
        // check instead: decoder flops > 3x encoder flops (§7.4: decode
        // is ~75 % of compute).
        let dec = Cell::Decoder(DecoderCell::seeded(64, 64, 2000, 1));
        let enc_small = Cell::Encoder(EncoderCell::seeded(64, 64, 2000, 1));
        assert!(dec.flops(16) > 3 * enc_small.flops(16));
        assert!(m.kernel_time_us(&enc, 512) > 0.0);
    }
}
