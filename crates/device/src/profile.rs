//! Per-cell-type FLOP profiles.
//!
//! The simulator prices tasks by FLOPs. Building models with the paper's
//! real shapes (hidden 1024, vocabulary 30k) just to obtain FLOP counts
//! would waste hundreds of megabytes of weights that the simulator never
//! reads, so a [`CostProfile`] decouples pricing from the concrete
//! weights: experiments construct *small* models (fast) and price them
//! at *paper scale*.

use bm_cell::{cost, Cell, CellRegistry, CellTypeId};

/// FLOPs-per-batch-row for each registered cell type.
#[derive(Debug, Clone, PartialEq)]
pub struct CostProfile {
    flops_per_row: Vec<f64>,
}

impl CostProfile {
    /// Derives the profile from the registry's actual cells.
    pub fn from_registry(reg: &CellRegistry) -> Self {
        CostProfile {
            flops_per_row: reg.iter().map(|m| m.cell.flops(1) as f64).collect(),
        }
    }

    /// Derives a profile pricing each cell kind at the paper's scale:
    /// hidden width `hidden` (1024 in the paper) and vocabulary `vocab`
    /// (30k for Seq2Seq). The registry's actual shapes are ignored.
    pub fn paper_scale(reg: &CellRegistry, hidden: usize, vocab: usize) -> Self {
        let flops_per_row = reg
            .iter()
            .map(|m| {
                let f = match m.cell.as_ref() {
                    Cell::Lstm(_) | Cell::Encoder(_) => cost::lstm_flops(1, hidden, hidden),
                    Cell::Gru(_) => cost::gru_flops(1, hidden, hidden),
                    Cell::Decoder(_) => {
                        cost::lstm_flops(1, hidden, hidden)
                            + cost::projection_flops(1, hidden, vocab)
                    }
                    Cell::TreeLeaf(_) => cost::tree_leaf_flops(1, hidden, hidden),
                    Cell::TreeInternal(_) => cost::tree_internal_flops(1, hidden),
                };
                f as f64
            })
            .collect();
        CostProfile { flops_per_row }
    }

    /// FLOPs of one execution of `ct` at batch size `batch`.
    ///
    /// # Panics
    ///
    /// Panics if `ct` is not covered by the profile.
    pub fn flops(&self, ct: CellTypeId, batch: usize) -> u64 {
        (self.flops_per_row[ct.index()] * batch as f64) as u64
    }

    /// Overrides one type's per-row FLOPs (ablation hooks).
    pub fn set(&mut self, ct: CellTypeId, flops_per_row: f64) {
        self.flops_per_row[ct.index()] = flops_per_row;
    }

    /// Number of covered cell types.
    pub fn len(&self) -> usize {
        self.flops_per_row.len()
    }

    /// Whether the profile covers no types.
    pub fn is_empty(&self) -> bool {
        self.flops_per_row.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bm_cell::{Cell, LstmCell};

    fn registry() -> (CellRegistry, CellTypeId) {
        let mut reg = CellRegistry::new();
        let id = reg.register("lstm", Cell::Lstm(LstmCell::seeded(8, 8, 16, 1)), 0, 1, 64);
        (reg, id)
    }

    #[test]
    fn from_registry_matches_cell_flops() {
        let (reg, id) = registry();
        let p = CostProfile::from_registry(&reg);
        assert_eq!(p.flops(id, 1), reg.cell(id).flops(1));
        assert_eq!(p.flops(id, 7), 7 * reg.cell(id).flops(1));
    }

    #[test]
    fn paper_scale_ignores_actual_shapes() {
        let (reg, id) = registry();
        let p = CostProfile::paper_scale(&reg, 1024, 30_000);
        // Paper-scale LSTM step is ~16.8 MFLOPs/row despite the tiny
        // registered cell.
        assert!(p.flops(id, 1) > 16_000_000);
    }

    #[test]
    fn set_overrides() {
        let (reg, id) = registry();
        let mut p = CostProfile::from_registry(&reg);
        p.set(id, 123.0);
        assert_eq!(p.flops(id, 2), 246);
    }
}
