//! Device abstraction: a calibrated GPU timing model and CPU execution
//! helpers.
//!
//! The environment has no GPU, so serving experiments run on a simulated
//! device whose kernel-time curve is calibrated to the paper's Figure 3
//! microbenchmark (single LSTM step, hidden size 1024, NVIDIA V100):
//!
//! - execution time is *flat* (~150–190 µs) for batch sizes up to ~64 —
//!   the kernel is bound by launch overhead and off-chip memory traffic;
//! - it grows sublinearly up to b = 512 (≈ 784 µs), the throughput
//!   sweet spot;
//! - beyond 512 it roughly doubles as the batch doubles (compute bound).
//!
//! [`GpuCostModel`] reproduces this with a smooth-max of a fixed floor
//! and a FLOP-proportional compute term, and prices the ancillary costs
//! the paper discusses: per-task kernel-launch gaps (§5), "gather"
//! memory copies when batch composition changes, and cross-GPU state
//! transfers (§4.3).

mod cost;
mod profile;
mod timer;

pub use cost::{GpuCostModel, TaskCost};
pub use profile::CostProfile;
pub use timer::CpuTimer;

/// Identifier of a worker (one GPU device) in a multi-device deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WorkerId(pub u32);

impl WorkerId {
    /// Numeric index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for WorkerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_id_display() {
        assert_eq!(WorkerId(2).to_string(), "gpu2");
        assert_eq!(WorkerId(2).index(), 2);
    }
}
