//! The cell registry: startup-time materialization of cell types.
//!
//! "Upon startup, BatchMaker loads each cell's definition and its
//! pre-trained weights from files … BatchMaker identifies the type of
//! each cell by its definition, weights, and input tensor shapes." (§4.2)
//! "Each type of cell has a desired maximum batch size, which is
//! determined through offline benchmarking."
//!
//! The registry deduplicates cells by [`CellSignature`] and records the
//! scheduling metadata Algorithm 1 consumes: the priority ("one can
//! achieve better latency by preferentially executing cell types that
//! occur later in the computation graph", §4.3) and the supported batch
//! sizes `Bsizes`.

use std::collections::HashMap;
use std::sync::Arc;

use crate::signature::{CellSignature, CellTypeId};
use crate::Cell;

/// Scheduling metadata and executable cell for one registered cell type.
#[derive(Debug, Clone)]
pub struct CellMeta {
    /// The type's identifier.
    pub id: CellTypeId,
    /// Human-readable name, unique within the registry.
    pub name: String,
    /// The executable cell.
    pub cell: Arc<Cell>,
    /// Scheduling priority; higher runs first on ties (§4.3).
    pub priority: u32,
    /// Desired maximum batch size (offline-benchmarked, §4.2).
    pub max_batch: usize,
    /// Minimum batch size worth scheduling as a non-head task
    /// (`Bsizes.Min()` in Algorithm 1).
    pub min_batch: usize,
}

/// A registry of cell types, deduplicated by signature.
#[derive(Debug, Default, Clone)]
pub struct CellRegistry {
    metas: Vec<CellMeta>,
    by_signature: HashMap<CellSignature, CellTypeId>,
}

impl CellRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a cell type, returning its id.
    ///
    /// If an identical cell (same signature) is already registered, the
    /// existing id is returned and the new metadata is ignored.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero, `min_batch > max_batch`, or the
    /// name collides with a differently-signed cell.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        cell: Cell,
        priority: u32,
        min_batch: usize,
        max_batch: usize,
    ) -> CellTypeId {
        assert!(max_batch > 0, "max_batch must be positive");
        assert!(
            min_batch <= max_batch,
            "min_batch must not exceed max_batch"
        );
        let sig = cell.signature();
        if let Some(&id) = self.by_signature.get(&sig) {
            return id;
        }
        let name = name.into();
        assert!(
            self.metas.iter().all(|m| m.name != name),
            "cell name {name:?} already registered with a different signature"
        );
        let id = CellTypeId(self.metas.len() as u32);
        self.metas.push(CellMeta {
            id,
            name,
            cell: Arc::new(cell),
            priority,
            max_batch,
            min_batch,
        });
        self.by_signature.insert(sig, id);
        id
    }

    /// Metadata for a cell type.
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this registry.
    pub fn meta(&self, id: CellTypeId) -> &CellMeta {
        &self.metas[id.index()]
    }

    /// The executable cell for a type.
    pub fn cell(&self, id: CellTypeId) -> &Arc<Cell> {
        &self.metas[id.index()].cell
    }

    /// Number of registered types.
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// Iterates over all registered types in id order.
    pub fn iter(&self) -> impl Iterator<Item = &CellMeta> {
        self.metas.iter()
    }

    /// Looks up a type by name.
    pub fn by_name(&self, name: &str) -> Option<&CellMeta> {
        self.metas.iter().find(|m| m.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LstmCell, TreeInternalCell, TreeLeafCell};

    #[test]
    fn register_and_lookup() {
        let mut reg = CellRegistry::new();
        let id = reg.register("lstm", Cell::Lstm(LstmCell::seeded(4, 6, 10, 1)), 0, 1, 64);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.meta(id).name, "lstm");
        assert_eq!(reg.meta(id).max_batch, 64);
        assert!(reg.by_name("lstm").is_some());
        assert!(reg.by_name("nope").is_none());
    }

    #[test]
    fn identical_cells_deduplicate() {
        let mut reg = CellRegistry::new();
        let a = reg.register("a", Cell::Lstm(LstmCell::seeded(4, 6, 10, 1)), 0, 1, 64);
        let b = reg.register("b", Cell::Lstm(LstmCell::seeded(4, 6, 10, 1)), 9, 2, 8);
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
        // Original metadata wins.
        assert_eq!(reg.meta(a).priority, 0);
    }

    #[test]
    fn different_seeds_are_different_types() {
        let mut reg = CellRegistry::new();
        let a = reg.register("a", Cell::Lstm(LstmCell::seeded(4, 6, 10, 1)), 0, 1, 64);
        let b = reg.register("b", Cell::Lstm(LstmCell::seeded(4, 6, 10, 2)), 0, 1, 64);
        assert_ne!(a, b);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn tree_cells_are_distinct_types() {
        let mut reg = CellRegistry::new();
        let leaf = reg.register(
            "leaf",
            Cell::TreeLeaf(TreeLeafCell::seeded(4, 6, 10, 1)),
            0,
            1,
            64,
        );
        let internal = reg.register(
            "internal",
            Cell::TreeInternal(TreeInternalCell::seeded(6, 1)),
            1,
            1,
            64,
        );
        assert_ne!(leaf, internal);
        assert!(reg.meta(internal).priority > reg.meta(leaf).priority);
    }

    #[test]
    #[should_panic]
    fn zero_max_batch_rejected() {
        let mut reg = CellRegistry::new();
        reg.register("x", Cell::Lstm(LstmCell::seeded(4, 6, 10, 1)), 0, 0, 0);
    }

    #[test]
    #[should_panic]
    fn name_collision_rejected() {
        let mut reg = CellRegistry::new();
        reg.register("x", Cell::Lstm(LstmCell::seeded(4, 6, 10, 1)), 0, 1, 4);
        reg.register("x", Cell::Lstm(LstmCell::seeded(4, 6, 10, 2)), 0, 1, 4);
    }
}
