//! Cell type identity.
//!
//! "Two cells are of the same type if they have identical sub-graphs,
//! share the same parameter weights, and expect the same number of
//! identically-shaped input tensors. Cells with the same type can be
//! batched together if there is no data dependency between them." (§3.1)

use std::fmt;

/// Opaque identifier of a cell type within a [`crate::CellRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellTypeId(pub u32);

impl fmt::Display for CellTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ct{}", self.0)
    }
}

impl CellTypeId {
    /// The numeric index, usable for dense per-type arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The identity of a cell type: kind name, per-invocation input tensor
/// shapes, and a fingerprint of the parameter weights.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CellSignature {
    kind: &'static str,
    input_shapes: Vec<(usize, usize)>,
    weight_fingerprint: u64,
}

impl CellSignature {
    /// Builds a signature from its components.
    pub fn new(
        kind: &'static str,
        input_shapes: Vec<(usize, usize)>,
        weight_fingerprint: u64,
    ) -> Self {
        CellSignature {
            kind,
            input_shapes,
            weight_fingerprint,
        }
    }

    /// The cell kind name.
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// Per-invocation input tensor shapes.
    pub fn input_shapes(&self) -> &[(usize, usize)] {
        &self.input_shapes
    }

    /// Fingerprint of the parameter weights.
    pub fn weight_fingerprint(&self) -> u64 {
        self.weight_fingerprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        let id = CellTypeId(3);
        assert_eq!(id.to_string(), "ct3");
        assert_eq!(id.index(), 3);
    }

    #[test]
    fn signature_equality_requires_all_components() {
        let a = CellSignature::new("lstm", vec![(1, 4)], 99);
        assert_eq!(a, CellSignature::new("lstm", vec![(1, 4)], 99));
        assert_ne!(a, CellSignature::new("gru", vec![(1, 4)], 99));
        assert_ne!(a, CellSignature::new("lstm", vec![(1, 8)], 99));
        assert_ne!(a, CellSignature::new("lstm", vec![(1, 4)], 100));
    }
}
