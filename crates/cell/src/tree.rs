//! Binary constituency TreeLSTM cells (Tai et al., paper §2.1 Figure 2).
//!
//! "There are two types of RNN cells, leaf cell and internal cell. All
//! RNN cells of the same type share the same parameter weights."
//!
//! The leaf cell embeds an input word and produces an initial `(h, c)`;
//! the internal cell combines the states of its two children with
//! per-child forget gates (the *N*-ary TreeLSTM of Tai et al. with
//! `N = 2`, which is all the TreeBank dataset requires — §7.5 notes the
//! dataset "contains only binary tree samples").

use bm_tensor::io::WeightBundle;
use bm_tensor::{ops, xavier_uniform, Matrix, Scratch};

use crate::lstm::emit_states;
use crate::persist::{expect, expect_shape};
use crate::state::{collect_outputs, CellOutput, InvocationInput, RowInvocation};

/// TreeLSTM leaf cell: token embedding to initial `(h, c)`.
///
/// ```text
/// i = sigmoid(x · Wi + bi)
/// o = sigmoid(x · Wo + bo)
/// u = tanh   (x · Wu + bu)
/// c = i * u
/// h = o * tanh(c)
/// ```
#[derive(Debug, Clone)]
pub struct TreeLeafCell {
    embed: Matrix,
    wi: Matrix,
    bi: Matrix,
    wo: Matrix,
    bo: Matrix,
    wu: Matrix,
    bu: Matrix,
    embed_size: usize,
    hidden_size: usize,
}

impl TreeLeafCell {
    /// Creates a cell with seeded Xavier weights.
    pub fn seeded(embed_size: usize, hidden_size: usize, vocab: usize, seed: u64) -> Self {
        TreeLeafCell {
            embed: xavier_uniform(vocab, embed_size, seed ^ 0x1eaf_0001),
            wi: xavier_uniform(embed_size, hidden_size, seed ^ 0x1eaf_0002),
            bi: Matrix::zeros(1, hidden_size),
            wo: xavier_uniform(embed_size, hidden_size, seed ^ 0x1eaf_0003),
            bo: Matrix::zeros(1, hidden_size),
            wu: xavier_uniform(embed_size, hidden_size, seed ^ 0x1eaf_0004),
            bu: Matrix::zeros(1, hidden_size),
            embed_size,
            hidden_size,
        }
    }

    /// Embedding width.
    pub fn embed_size(&self) -> usize {
        self.embed_size
    }

    /// Hidden state width.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.embed.rows()
    }

    /// Input tensor shapes per invocation.
    pub fn input_shapes(&self) -> Vec<(usize, usize)> {
        vec![(1, self.embed_size)]
    }

    /// Fingerprint over all weights.
    pub fn weight_fingerprint(&self) -> u64 {
        crate::fingerprint_weights(&[
            &self.embed,
            &self.wi,
            &self.bi,
            &self.wo,
            &self.bo,
            &self.wu,
            &self.bu,
        ])
    }

    /// Runs one batched step; see [`crate::Cell::execute_batch`].
    pub fn execute_batch(&self, inputs: &[InvocationInput<'_>]) -> Vec<CellOutput> {
        self.execute_batch_in(inputs, &mut Scratch::new())
    }

    /// Scratch-arena variant of [`TreeLeafCell::execute_batch`].
    pub fn execute_batch_in(
        &self,
        inputs: &[InvocationInput<'_>],
        s: &mut Scratch,
    ) -> Vec<CellOutput> {
        collect_outputs(inputs, |rows, emit| self.execute_rows_in(rows, s, emit))
    }

    /// Row-level executor; see [`crate::Cell::execute_rows_in`].
    pub fn execute_rows_in<F>(&self, inputs: &[RowInvocation<'_>], s: &mut Scratch, mut emit: F)
    where
        F: FnMut(usize, &[f32], &[f32], Option<u32>),
    {
        let ids: Vec<usize> = inputs
            .iter()
            .map(|inv| {
                assert!(inv.states().is_empty(), "leaf cell takes no state inputs");
                inv.token().expect("leaf invocation requires a token") as usize
            })
            .collect();
        let batch = inputs.len();
        let hsz = self.hidden_size;
        let mut x = s.take(batch, self.embed_size);
        ops::embedding_into(&self.embed, &ids, &mut x);
        let mut i = s.take(batch, hsz);
        ops::affine_into(&x, &self.wi, &self.bi, &mut i);
        ops::sigmoid_inplace(&mut i);
        let mut o = s.take(batch, hsz);
        ops::affine_into(&x, &self.wo, &self.bo, &mut o);
        ops::sigmoid_inplace(&mut o);
        let mut u = s.take(batch, hsz);
        ops::affine_into(&x, &self.wu, &self.bu, &mut u);
        ops::tanh_inplace(&mut u);
        let mut h = s.take(batch, hsz);
        let mut c = s.take(batch, hsz);
        ops::tree_leaf_combine(&i, &o, &u, &mut h, &mut c);
        emit_states(&h, &c, &mut emit);
        for m in [x, i, o, u, h, c] {
            s.put(m);
        }
    }

    /// Exports the cell's weights (§4.2 persistence).
    pub fn to_bundle(&self) -> WeightBundle {
        let mut b = WeightBundle::new();
        b.insert("embed", self.embed.clone());
        for (name, m) in [
            ("wi", &self.wi),
            ("bi", &self.bi),
            ("wo", &self.wo),
            ("bo", &self.bo),
            ("wu", &self.wu),
            ("bu", &self.bu),
        ] {
            b.insert(name, m.clone());
        }
        b
    }

    /// Reconstructs the cell from saved weights, inferring shapes.
    pub fn from_bundle(bundle: &WeightBundle) -> Result<Self, String> {
        let embed = expect(bundle, "embed")?;
        let wi = expect(bundle, "wi")?;
        let embed_size = embed.cols();
        let hidden = wi.cols();
        expect_shape(wi, (embed_size, hidden), "wi")?;
        let get = |name: &str, shape: (usize, usize)| -> Result<Matrix, String> {
            let m = expect(bundle, name)?;
            expect_shape(m, shape, name)?;
            Ok(m.clone())
        };
        Ok(TreeLeafCell {
            embed: embed.clone(),
            wi: wi.clone(),
            bi: get("bi", (1, hidden))?,
            wo: get("wo", (embed_size, hidden))?,
            bo: get("bo", (1, hidden))?,
            wu: get("wu", (embed_size, hidden))?,
            bu: get("bu", (1, hidden))?,
            embed_size,
            hidden_size: hidden,
        })
    }
}

/// TreeLSTM internal (binary) cell combining two child states.
///
/// With `hs = [h_left, h_right]`:
///
/// ```text
/// i  = sigmoid(hs · Wi + bi)
/// fl = sigmoid(hs · Wfl + bfl)
/// fr = sigmoid(hs · Wfr + bfr)
/// o  = sigmoid(hs · Wo + bo)
/// u  = tanh   (hs · Wu + bu)
/// c  = i * u + fl * c_left + fr * c_right
/// h  = o * tanh(c)
/// ```
#[derive(Debug, Clone)]
pub struct TreeInternalCell {
    wi: Matrix,
    bi: Matrix,
    wfl: Matrix,
    bfl: Matrix,
    wfr: Matrix,
    bfr: Matrix,
    wo: Matrix,
    bo: Matrix,
    wu: Matrix,
    bu: Matrix,
    hidden_size: usize,
}

impl TreeInternalCell {
    /// Creates a cell with seeded Xavier weights.
    pub fn seeded(hidden_size: usize, seed: u64) -> Self {
        let hs = 2 * hidden_size;
        TreeInternalCell {
            wi: xavier_uniform(hs, hidden_size, seed ^ 0x7ee_0001),
            bi: Matrix::zeros(1, hidden_size),
            wfl: xavier_uniform(hs, hidden_size, seed ^ 0x7ee_0002),
            bfl: Matrix::filled(1, hidden_size, 1.0), // Forget bias 1: standard practice.
            wfr: xavier_uniform(hs, hidden_size, seed ^ 0x7ee_0003),
            bfr: Matrix::filled(1, hidden_size, 1.0),
            wo: xavier_uniform(hs, hidden_size, seed ^ 0x7ee_0004),
            bo: Matrix::zeros(1, hidden_size),
            wu: xavier_uniform(hs, hidden_size, seed ^ 0x7ee_0005),
            bu: Matrix::zeros(1, hidden_size),
            hidden_size,
        }
    }

    /// Hidden state width.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// Input tensor shapes per invocation (left h, left c, right h, right c).
    pub fn input_shapes(&self) -> Vec<(usize, usize)> {
        vec![(1, self.hidden_size); 4]
    }

    /// Fingerprint over all weights.
    pub fn weight_fingerprint(&self) -> u64 {
        crate::fingerprint_weights(&[
            &self.wi, &self.bi, &self.wfl, &self.bfl, &self.wfr, &self.bfr, &self.wo, &self.bo,
            &self.wu, &self.bu,
        ])
    }

    /// Runs one batched step; see [`crate::Cell::execute_batch`].
    pub fn execute_batch(&self, inputs: &[InvocationInput<'_>]) -> Vec<CellOutput> {
        self.execute_batch_in(inputs, &mut Scratch::new())
    }

    /// Scratch-arena variant of [`TreeInternalCell::execute_batch`]:
    /// gathers child states straight into a scratch `[h_left, h_right]`
    /// buffer and fuses the gate combine.
    pub fn execute_batch_in(
        &self,
        inputs: &[InvocationInput<'_>],
        s: &mut Scratch,
    ) -> Vec<CellOutput> {
        collect_outputs(inputs, |rows, emit| self.execute_rows_in(rows, s, emit))
    }

    /// Row-level executor; see [`crate::Cell::execute_rows_in`].
    pub fn execute_rows_in<F>(&self, inputs: &[RowInvocation<'_>], s: &mut Scratch, mut emit: F)
    where
        F: FnMut(usize, &[f32], &[f32], Option<u32>),
    {
        let batch = inputs.len();
        let hsz = self.hidden_size;
        let mut hs = s.take(batch, 2 * hsz);
        let mut cl = s.take(batch, hsz);
        let mut cr = s.take(batch, hsz);
        for (r, inv) in inputs.iter().enumerate() {
            let [left, right] = match inv.states() {
                [l, r] => [l, r],
                more => panic!(
                    "internal cell requires exactly two child states, got {}",
                    more.len()
                ),
            };
            let hs_row = hs.row_mut(r);
            hs_row[..hsz].copy_from_slice(left.h);
            hs_row[hsz..].copy_from_slice(right.h);
            cl.row_mut(r).copy_from_slice(left.c);
            cr.row_mut(r).copy_from_slice(right.c);
        }
        let mut i = s.take(batch, hsz);
        ops::affine_into(&hs, &self.wi, &self.bi, &mut i);
        ops::sigmoid_inplace(&mut i);
        let mut fl = s.take(batch, hsz);
        ops::affine_into(&hs, &self.wfl, &self.bfl, &mut fl);
        ops::sigmoid_inplace(&mut fl);
        let mut fr = s.take(batch, hsz);
        ops::affine_into(&hs, &self.wfr, &self.bfr, &mut fr);
        ops::sigmoid_inplace(&mut fr);
        let mut o = s.take(batch, hsz);
        ops::affine_into(&hs, &self.wo, &self.bo, &mut o);
        ops::sigmoid_inplace(&mut o);
        let mut u = s.take(batch, hsz);
        ops::affine_into(&hs, &self.wu, &self.bu, &mut u);
        ops::tanh_inplace(&mut u);
        let mut h_out = s.take(batch, hsz);
        let mut c = s.take(batch, hsz);
        ops::tree_internal_combine(&i, &fl, &fr, &o, &u, &cl, &cr, &mut h_out, &mut c);
        emit_states(&h_out, &c, &mut emit);
        for m in [hs, cl, cr, i, fl, fr, o, u, h_out, c] {
            s.put(m);
        }
    }

    /// Exports the cell's weights (§4.2 persistence).
    pub fn to_bundle(&self) -> WeightBundle {
        let mut b = WeightBundle::new();
        for (name, m) in [
            ("wi", &self.wi),
            ("bi", &self.bi),
            ("wfl", &self.wfl),
            ("bfl", &self.bfl),
            ("wfr", &self.wfr),
            ("bfr", &self.bfr),
            ("wo", &self.wo),
            ("bo", &self.bo),
            ("wu", &self.wu),
            ("bu", &self.bu),
        ] {
            b.insert(name, m.clone());
        }
        b
    }

    /// Reconstructs the cell from saved weights, inferring shapes.
    pub fn from_bundle(bundle: &WeightBundle) -> Result<Self, String> {
        let wi = expect(bundle, "wi")?;
        let hidden = wi.cols();
        let hs = 2 * hidden;
        expect_shape(wi, (hs, hidden), "wi")?;
        let get = |name: &str, shape: (usize, usize)| -> Result<Matrix, String> {
            let m = expect(bundle, name)?;
            expect_shape(m, shape, name)?;
            Ok(m.clone())
        };
        Ok(TreeInternalCell {
            wi: wi.clone(),
            bi: get("bi", (1, hidden))?,
            wfl: get("wfl", (hs, hidden))?,
            bfl: get("bfl", (1, hidden))?,
            wfr: get("wfr", (hs, hidden))?,
            bfr: get("bfr", (1, hidden))?,
            wo: get("wo", (hs, hidden))?,
            bo: get("bo", (1, hidden))?,
            wu: get("wu", (hs, hidden))?,
            bu: get("bu", (1, hidden))?,
            hidden_size: hidden,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::CellState;

    #[test]
    fn leaf_produces_state() {
        let leaf = TreeLeafCell::seeded(4, 6, 10, 1);
        let out = leaf.execute_batch(&[InvocationInput::token_only(3)]);
        assert_eq!(out[0].state.h.len(), 6);
        assert_eq!(out[0].state.c.len(), 6);
    }

    #[test]
    fn internal_combines_children() {
        let leaf = TreeLeafCell::seeded(4, 6, 10, 1);
        let internal = TreeInternalCell::seeded(6, 2);
        let kids = leaf.execute_batch(&[
            InvocationInput::token_only(1),
            InvocationInput::token_only(2),
        ]);
        let out = internal.execute_batch(&[InvocationInput::tree(&kids[0].state, &kids[1].state)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].state.h.len(), 6);
    }

    #[test]
    fn internal_is_order_sensitive() {
        // Left/right children use distinct forget gates, so swapping them
        // must change the output.
        let leaf = TreeLeafCell::seeded(4, 6, 10, 1);
        let internal = TreeInternalCell::seeded(6, 2);
        let kids = leaf.execute_batch(&[
            InvocationInput::token_only(1),
            InvocationInput::token_only(2),
        ]);
        let ab = internal.execute_batch(&[InvocationInput::tree(&kids[0].state, &kids[1].state)]);
        let ba = internal.execute_batch(&[InvocationInput::tree(&kids[1].state, &kids[0].state)]);
        assert_ne!(ab[0].state, ba[0].state);
    }

    #[test]
    fn batched_equals_sequential() {
        let leaf = TreeLeafCell::seeded(4, 6, 10, 1);
        let internal = TreeInternalCell::seeded(6, 2);
        let kids = leaf.execute_batch(&[
            InvocationInput::token_only(1),
            InvocationInput::token_only(2),
            InvocationInput::token_only(3),
            InvocationInput::token_only(4),
        ]);
        let a = internal.execute_batch(&[InvocationInput::tree(&kids[0].state, &kids[1].state)]);
        let b = internal.execute_batch(&[InvocationInput::tree(&kids[2].state, &kids[3].state)]);
        let both = internal.execute_batch(&[
            InvocationInput::tree(&kids[0].state, &kids[1].state),
            InvocationInput::tree(&kids[2].state, &kids[3].state),
        ]);
        assert_eq!(both[0], a[0]);
        assert_eq!(both[1], b[0]);
    }

    #[test]
    #[should_panic]
    fn internal_rejects_single_child() {
        let internal = TreeInternalCell::seeded(6, 2);
        let s = CellState::zeros(6);
        let bad = InvocationInput {
            token: None,
            states: vec![&s],
        };
        let _ = internal.execute_batch(&[bad]);
    }

    #[test]
    fn leaf_batched_equals_sequential() {
        let leaf = TreeLeafCell::seeded(4, 6, 10, 9);
        let a = leaf.execute_batch(&[InvocationInput::token_only(5)]);
        let b = leaf.execute_batch(&[InvocationInput::token_only(6)]);
        let both = leaf.execute_batch(&[
            InvocationInput::token_only(5),
            InvocationInput::token_only(6),
        ]);
        assert_eq!(both[0], a[0]);
        assert_eq!(both[1], b[0]);
    }
}
