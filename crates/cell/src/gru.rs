//! GRU cell — an extension beyond the paper's evaluated models.
//!
//! The paper's cell abstraction is deliberately generic ("a simple cell
//! contains a few tensor operators; a complex cell such as LSTM not only
//! contains many operators but also its own internal recursion", §3.1).
//! A GRU exercises the scheduler with a cell whose state has no memory
//! component, validating that nothing in the system assumes LSTM state
//! layout.
//!
//! Step (with `x` the embedded token and `h` the previous hidden state):
//!
//! ```text
//! r = sigmoid([x, h] · Wr + br)
//! z = sigmoid([x, h] · Wz + bz)
//! n = tanh([x, r * h] · Wn + bn)
//! h' = (1 - z) * n + z * h
//! ```

use bm_tensor::io::WeightBundle;
use bm_tensor::{ops, xavier_uniform, Matrix, Scratch};

use crate::persist::{expect, expect_shape};
use crate::state::{collect_outputs, CellOutput, InvocationInput, RowInvocation};

/// A GRU cell with its own embedding table.
#[derive(Debug, Clone)]
pub struct GruCell {
    embed: Matrix,
    wr: Matrix,
    br: Matrix,
    wz: Matrix,
    bz: Matrix,
    wn: Matrix,
    bn: Matrix,
    embed_size: usize,
    hidden_size: usize,
}

impl GruCell {
    /// Creates a cell with seeded Xavier weights.
    pub fn seeded(embed_size: usize, hidden_size: usize, vocab: usize, seed: u64) -> Self {
        let io = embed_size + hidden_size;
        GruCell {
            embed: xavier_uniform(vocab, embed_size, seed ^ 0x6ee1_0001),
            wr: xavier_uniform(io, hidden_size, seed ^ 0x6ee1_0002),
            br: Matrix::zeros(1, hidden_size),
            wz: xavier_uniform(io, hidden_size, seed ^ 0x6ee1_0003),
            bz: Matrix::zeros(1, hidden_size),
            wn: xavier_uniform(io, hidden_size, seed ^ 0x6ee1_0004),
            bn: Matrix::zeros(1, hidden_size),
            embed_size,
            hidden_size,
        }
    }

    /// Embedding width.
    pub fn embed_size(&self) -> usize {
        self.embed_size
    }

    /// Hidden state width.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.embed.rows()
    }

    /// Input tensor shapes per invocation.
    pub fn input_shapes(&self) -> Vec<(usize, usize)> {
        vec![(1, self.embed_size), (1, self.hidden_size)]
    }

    /// Fingerprint over all weights.
    pub fn weight_fingerprint(&self) -> u64 {
        crate::fingerprint_weights(&[
            &self.embed,
            &self.wr,
            &self.br,
            &self.wz,
            &self.bz,
            &self.wn,
            &self.bn,
        ])
    }

    /// Runs one batched step; see [`crate::Cell::execute_batch`].
    pub fn execute_batch(&self, inputs: &[InvocationInput<'_>]) -> Vec<CellOutput> {
        self.execute_batch_in(inputs, &mut Scratch::new())
    }

    /// Scratch-arena variant of [`GruCell::execute_batch`]: gathers
    /// straight into a scratch `[x, h]` buffer, runs fused affines with
    /// in-place activations, and rewrites the buffer's right half to
    /// `r * h` for the candidate gate instead of concatenating afresh —
    /// bitwise identical to the unfused chain.
    pub fn execute_batch_in(
        &self,
        inputs: &[InvocationInput<'_>],
        s: &mut Scratch,
    ) -> Vec<CellOutput> {
        collect_outputs(inputs, |rows, emit| self.execute_rows_in(rows, s, emit))
    }

    /// Row-level executor; see [`crate::Cell::execute_rows_in`]. The
    /// emitted `c` slice is always empty — a GRU state has no memory
    /// cell.
    pub fn execute_rows_in<F>(&self, inputs: &[RowInvocation<'_>], s: &mut Scratch, mut emit: F)
    where
        F: FnMut(usize, &[f32], &[f32], Option<u32>),
    {
        let batch = inputs.len();
        let e = self.embed_size;
        let hsz = self.hidden_size;
        let mut xh = s.take(batch, e + hsz);
        let mut h = s.take(batch, hsz);
        for (r, inv) in inputs.iter().enumerate() {
            let id = inv.token().expect("gru invocation requires a token") as usize;
            assert!(
                id < self.embed.rows(),
                "embedding id {id} >= vocab {}",
                self.embed.rows()
            );
            let xh_row = xh.row_mut(r);
            xh_row[..e].copy_from_slice(self.embed.row(id));
            match inv.states() {
                [] => {}
                [st] => {
                    xh_row[e..].copy_from_slice(st.h);
                    h.row_mut(r).copy_from_slice(st.h);
                }
                more => panic!("gru invocation with {} states", more.len()),
            }
        }
        let mut r_gate = s.take(batch, hsz);
        ops::affine_into(&xh, &self.wr, &self.br, &mut r_gate);
        ops::sigmoid_inplace(&mut r_gate);
        let mut z_gate = s.take(batch, hsz);
        ops::affine_into(&xh, &self.wz, &self.bz, &mut z_gate);
        ops::sigmoid_inplace(&mut z_gate);
        // Turn [x, h] into [x, r * h] in place for the candidate gate.
        for row in 0..batch {
            let xh_row = xh.row_mut(row);
            let rr = r_gate.row(row);
            for j in 0..hsz {
                xh_row[e + j] = rr[j] * h.row(row)[j];
            }
        }
        let mut n_gate = s.take(batch, hsz);
        ops::affine_into(&xh, &self.wn, &self.bn, &mut n_gate);
        ops::tanh_inplace(&mut n_gate);
        let mut h_new = s.take(batch, hsz);
        ops::gru_combine(&z_gate, &n_gate, &h, &mut h_new);
        for row in 0..batch {
            emit(row, h_new.row(row), &[], None);
        }
        for m in [xh, h, r_gate, z_gate, n_gate, h_new] {
            s.put(m);
        }
    }

    /// Resident-state row layout: the canonical `h` lives in `aux`, not
    /// in the `[x|h]` input — the candidate gate rewrites `xh`'s right
    /// half to `r * h` in place each step, so `xh` is per-step scratch
    /// and only `aux` survives across steps.
    pub fn resident_layout(&self) -> crate::state::ResidentLayout {
        crate::state::ResidentLayout {
            x_width: self.embed_size,
            hidden: self.hidden_size,
            h_in_xh: false,
            aux_width: self.hidden_size,
        }
    }

    /// Resident-state executor: refreshes `xh` rows from the resident
    /// `aux` hidden state (one `hidden`-float copy per row — retained
    /// because the candidate gate destroys `xh`'s right half), runs the
    /// three fused prefix affines, and combines the new hidden state
    /// into `aux` in place. Emits `(row, h, [], None)` per row, bitwise
    /// identical to [`GruCell::execute_rows_in`] over equal state rows.
    pub fn step_resident<F>(
        &self,
        xh: &mut Matrix,
        aux: &mut Matrix,
        rows: usize,
        tokens: &[Option<u32>],
        s: &mut Scratch,
        mut emit: F,
    ) where
        F: FnMut(usize, &[f32], &[f32], Option<u32>),
    {
        let e = self.embed_size;
        let hsz = self.hidden_size;
        debug_assert_eq!(xh.cols(), e + hsz);
        debug_assert_eq!(aux.cols(), hsz);
        for (r, token) in tokens.iter().enumerate().take(rows) {
            let id = token.expect("gru invocation requires a token") as usize;
            assert!(
                id < self.embed.rows(),
                "embedding id {id} >= vocab {}",
                self.embed.rows()
            );
            let xh_row = xh.row_mut(r);
            xh_row[..e].copy_from_slice(self.embed.row(id));
            xh_row[e..].copy_from_slice(aux.row(r));
        }
        let pool = ops::auto_pool(rows, e + hsz, hsz);
        // Gate buffers are fully overwritten by the affines.
        let mut r_gate = s.take_dirty(rows, hsz);
        ops::affine_rows_into(xh, rows, &self.wr, &self.br, &mut r_gate, pool);
        ops::sigmoid_inplace(&mut r_gate);
        let mut z_gate = s.take_dirty(rows, hsz);
        ops::affine_rows_into(xh, rows, &self.wz, &self.bz, &mut z_gate, pool);
        ops::sigmoid_inplace(&mut z_gate);
        // Turn [x, h] into [x, r * h] in place for the candidate gate.
        for row in 0..rows {
            let xh_row = xh.row_mut(row);
            let rr = r_gate.row(row);
            let hr = aux.row(row);
            for j in 0..hsz {
                xh_row[e + j] = rr[j] * hr[j];
            }
        }
        let mut n_gate = s.take_dirty(rows, hsz);
        ops::affine_rows_into(xh, rows, &self.wn, &self.bn, &mut n_gate, pool);
        ops::tanh_inplace(&mut n_gate);
        for row in 0..rows {
            ops::gru_combine_row_inplace(z_gate.row(row), n_gate.row(row), aux.row_mut(row));
        }
        for row in 0..rows {
            emit(row, aux.row(row), &[], None);
        }
        for m in [r_gate, z_gate, n_gate] {
            s.put(m);
        }
    }

    /// Exports the cell's weights (§4.2 persistence).
    pub fn to_bundle(&self) -> WeightBundle {
        let mut b = WeightBundle::new();
        b.insert("embed", self.embed.clone());
        for (name, m) in [
            ("wr", &self.wr),
            ("br", &self.br),
            ("wz", &self.wz),
            ("bz", &self.bz),
            ("wn", &self.wn),
            ("bn", &self.bn),
        ] {
            b.insert(name, m.clone());
        }
        b
    }

    /// Reconstructs the cell from saved weights, inferring shapes.
    pub fn from_bundle(bundle: &WeightBundle) -> Result<Self, String> {
        let embed = expect(bundle, "embed")?;
        let wr = expect(bundle, "wr")?;
        let hidden = wr.cols();
        let embed_size = embed.cols();
        let io = embed_size + hidden;
        expect_shape(wr, (io, hidden), "wr")?;
        let get = |name: &str, shape: (usize, usize)| -> Result<Matrix, String> {
            let m = expect(bundle, name)?;
            expect_shape(m, shape, name)?;
            Ok(m.clone())
        };
        Ok(GruCell {
            embed: embed.clone(),
            wr: wr.clone(),
            br: get("br", (1, hidden))?,
            wz: get("wz", (io, hidden))?,
            bz: get("bz", (1, hidden))?,
            wn: get("wn", (io, hidden))?,
            bn: get("bn", (1, hidden))?,
            embed_size,
            hidden_size: hidden,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::CellState;

    fn cell() -> GruCell {
        GruCell::seeded(4, 5, 12, 77)
    }

    #[test]
    fn state_has_no_memory_cell() {
        let c = cell();
        let out = c.execute_batch(&[InvocationInput::token_only(2)]);
        assert_eq!(out[0].state.h.len(), 5);
        assert!(out[0].state.c.is_empty());
    }

    #[test]
    fn batched_equals_sequential() {
        let c = cell();
        let a = c.execute_batch(&[InvocationInput::token_only(1)]);
        let b = c.execute_batch(&[InvocationInput::token_only(7)]);
        let both = c.execute_batch(&[
            InvocationInput::token_only(1),
            InvocationInput::token_only(7),
        ]);
        assert_eq!(both[0], a[0]);
        assert_eq!(both[1], b[0]);
    }

    #[test]
    fn hidden_state_stays_bounded() {
        let c = cell();
        let mut s = CellState {
            h: vec![0.0; 5],
            c: Vec::new(),
        };
        for t in 0..20 {
            let out = c.execute_batch(&[InvocationInput::chain(t % 12, &s)]);
            s = out.into_iter().next().unwrap().state;
            assert!(s.h.iter().all(|v| v.abs() <= 1.0));
        }
    }

    #[test]
    fn chain_changes_state() {
        let c = cell();
        let a = c.execute_batch(&[InvocationInput::token_only(3)]);
        let b = c.execute_batch(&[InvocationInput::chain(3, &a[0].state)]);
        assert_ne!(a[0].state, b[0].state);
    }
}
