//! LSTM cell: the paper's workhorse (Hochreiter & Schmidhuber, §2.1).
//!
//! The step computes, with `x` the embedded input and `(h, c)` the
//! previous state:
//!
//! ```text
//! z            = [x, h] · W + b          // (batch, 4h)
//! i, f, g, o   = split(z, 4)
//! c'           = sigmoid(f) * c + sigmoid(i) * tanh(g)
//! h'           = sigmoid(o) * tanh(c')
//! ```
//!
//! This matches the paper's microbenchmark configuration: "one
//! matrix-multiplication operation with input tensor shapes `b × 2h` and
//! `2h × 4h`" (§2.2, footnote 2) when the embedding width equals the
//! hidden width.

use bm_tensor::io::WeightBundle;
use bm_tensor::{gemm, ops, xavier_uniform, Matrix, PackedWeights, Scratch};

use crate::persist::{expect, expect_shape};
use crate::state::{collect_outputs, CellOutput, InvocationInput, RowInvocation};

/// Cap on cached token-projection size (`vocab * 4 * hidden` floats,
/// 16 MiB of f32). Above it the resident path falls back to gathering
/// the embedded input into a `[x|h]` batch like the gather path does.
const MAX_PROJ_ELEMS: usize = 1 << 22;

/// The cached input half of the resident split affine.
///
/// The gate pre-activation `z = [x|h]·W + b` folds its inner dimension
/// in ascending order with the bias added once at the end, so it splits
/// exactly at the `x`/`h` boundary: `proj[t] = embed[t]·Wx` (no bias)
/// is the first `input_size` terms of every output element's fold, and
/// a [`gemm::gemm_acc_into`] continuation over `h·Wh` (bias at the end)
/// reproduces the remaining terms bit for bit. Since the embedding and
/// `W` are immutable per cell type (§4.2), `proj` is computed once at
/// construction — the resident step then pays one row copy per request
/// instead of the `x`-half of the GEMM, which halves the per-step
/// multiply count when `embed_size == hidden_size`.
#[derive(Debug, Clone)]
pub(crate) struct TokenProj {
    /// `embed · Wx`, `(vocab, 4 * hidden)`, bias *not* included.
    proj: Matrix,
    /// Rows `input_size..` of `w` (the recurrent half), packed.
    wh: PackedWeights,
}

/// The weight set and math of one LSTM step, shared by every cell kind
/// that embeds an LSTM (plain, encoder, decoder).
#[derive(Debug, Clone)]
pub(crate) struct LstmCore {
    /// Fused gate weights, `(embed + hidden, 4 * hidden)`.
    pub w: Matrix,
    /// Fused gate bias, `(1, 4 * hidden)`.
    pub b: Matrix,
    pub input_size: usize,
    pub hidden_size: usize,
    /// Cached token projection for the resident fast path; `None` when
    /// the table would exceed [`MAX_PROJ_ELEMS`].
    pub(crate) token_proj: Option<TokenProj>,
}

impl LstmCore {
    pub fn seeded(input_size: usize, hidden_size: usize, seed: u64) -> Self {
        LstmCore {
            w: xavier_uniform(input_size + hidden_size, 4 * hidden_size, seed),
            b: Matrix::zeros(1, 4 * hidden_size),
            input_size,
            hidden_size,
            token_proj: None,
        }
    }

    /// Precomputes the [`TokenProj`] pair for `embed` (a no-op above
    /// the size cap). Called by every owning cell right after the core
    /// and embedding exist — construction and bundle-load alike — so
    /// the cache can never go stale against the weights it derives
    /// from.
    pub(crate) fn install_token_proj(&mut self, embed: &Matrix) {
        let (e, hsz) = (self.input_size, self.hidden_size);
        let gates = 4 * hsz;
        let vocab = embed.rows();
        debug_assert_eq!(embed.cols(), e, "embedding width");
        if vocab.saturating_mul(gates) > MAX_PROJ_ELEMS {
            self.token_proj = None;
            return;
        }
        let wdata = self.w.as_slice();
        let wx = PackedWeights::pack(e, gates, &wdata[..e * gates]);
        let wh = PackedWeights::pack(hsz, gates, &wdata[e * gates..]);
        let mut proj = Matrix::zeros(vocab, gates);
        gemm::gemm_into(
            embed.as_slice(),
            vocab,
            e,
            &wx,
            None,
            proj.as_mut_slice(),
            None,
        );
        self.token_proj = Some(TokenProj { proj, wh });
    }

    /// The resident row layout this core steps with: `h`-only rows when
    /// the token projection is cached (the fast path needs no `x`
    /// columns at all), the full `[x|h]` rows otherwise.
    pub(crate) fn resident_layout(&self) -> crate::state::ResidentLayout {
        let x_width = if self.token_proj.is_some() {
            0
        } else {
            self.input_size
        };
        crate::state::ResidentLayout {
            x_width,
            hidden: self.hidden_size,
            h_in_xh: true,
            aux_width: self.hidden_size,
        }
    }

    /// One batched LSTM step over a pre-gathered `[x, h]` input.
    ///
    /// `xh` is `(batch, input + hidden)`, `c_prev` is `(batch, hidden)`.
    /// Returns `(h', c')` backed by buffers from `s`. One fused affine
    /// into a scratch gate buffer plus one fused gate kernel — zero
    /// intermediate allocations in steady state, bitwise identical to the
    /// unfused concat/affine/split/activation/mul/add chain.
    pub fn step_in(&self, xh: &Matrix, c_prev: &Matrix, s: &mut Scratch) -> (Matrix, Matrix) {
        debug_assert_eq!(xh.cols(), self.input_size + self.hidden_size);
        debug_assert_eq!(c_prev.cols(), self.hidden_size);
        let batch = xh.rows();
        let mut z = s.take(batch, 4 * self.hidden_size);
        ops::affine_into(xh, &self.w, &self.b, &mut z);
        let mut h_new = s.take(batch, self.hidden_size);
        let mut c_new = s.take(batch, self.hidden_size);
        ops::lstm_gates(&z, c_prev, &mut h_new, &mut c_new);
        s.put(z);
        (h_new, c_new)
    }

    /// One fused LSTM step over the occupied prefix (`0..rows`) of a
    /// resident batch, updating state in place.
    ///
    /// With a cached [`TokenProj`] (the common case), `xh` is an
    /// `h`-only matrix: each row's gate pre-activation is seeded from
    /// the token's cached `x·Wx` partial row and completed by one
    /// fold-continuation affine over `h·Wh`
    /// ([`ops::affine_acc_rows_into`]) — half the multiplies of the
    /// full `[x|h]·W` when `embed == hidden`, and zero state movement
    /// at steady state. Without it (oversized vocabulary), tokens embed
    /// into the left columns of `xh` and one full prefix affine runs as
    /// the gather path would. Either way the per-row gate kernel then
    /// overwrites the hidden and cell state in place.
    ///
    /// Bitwise identical per row to `gather_chain_xh` + [`step_in`]
    /// over the same rows: the split affine continues the same
    /// ascending-`k` fold with the bias added once at the end (see
    /// [`TokenProj`]), and the gate kernel evaluates the same
    /// expression tree ([`ops::lstm_gates_row_inplace`]).
    ///
    /// [`step_in`]: LstmCore::step_in
    pub fn step_resident_chain(
        &self,
        embed: &Matrix,
        xh: &mut Matrix,
        c: &mut Matrix,
        rows: usize,
        tokens: &[Option<u32>],
        s: &mut Scratch,
    ) {
        let hsz = self.hidden_size;
        debug_assert_eq!(c.cols(), hsz);
        if let Some(tp) = &self.token_proj {
            debug_assert_eq!(xh.cols(), hsz);
            // Fully overwritten by the seed copies, so dirty is fine.
            let mut z = s.take_dirty(rows, 4 * hsz);
            for (r, token) in tokens.iter().enumerate().take(rows) {
                let id = token.expect("chain cell invocation requires a token") as usize;
                assert!(
                    id < tp.proj.rows(),
                    "embedding id {id} >= vocab {}",
                    tp.proj.rows()
                );
                z.row_mut(r).copy_from_slice(tp.proj.row(id));
            }
            ops::affine_acc_rows_into(
                xh,
                rows,
                &tp.wh,
                &self.b,
                &mut z,
                ops::auto_pool(rows, hsz, 4 * hsz),
            );
            for r in 0..rows {
                ops::lstm_gates_row_inplace(z.row(r), xh.row_mut(r), c.row_mut(r));
            }
            s.put(z);
            return;
        }
        let e = self.input_size;
        debug_assert_eq!(xh.cols(), e + hsz);
        for (r, token) in tokens.iter().enumerate().take(rows) {
            let id = token.expect("chain cell invocation requires a token") as usize;
            assert!(
                id < embed.rows(),
                "embedding id {id} >= vocab {}",
                embed.rows()
            );
            xh.row_mut(r)[..e].copy_from_slice(embed.row(id));
        }
        // Fully overwritten by the affine, so a dirty buffer is fine.
        let mut z = s.take_dirty(rows, 4 * hsz);
        ops::affine_rows_into(
            xh,
            rows,
            &self.w,
            &self.b,
            &mut z,
            ops::auto_pool(rows, e + hsz, 4 * hsz),
        );
        for r in 0..rows {
            ops::lstm_gates_row_inplace(z.row(r), &mut xh.row_mut(r)[e..], c.row_mut(r));
        }
        s.put(z);
    }
}

/// Gathers the batched `[x, h]` input and previous cell state for
/// chain-style invocations directly into scratch buffers: tokens embed
/// into the left `input_size` columns, predecessor states copy into the
/// right `hidden_size` columns (and `c`), and chain starts keep the
/// implicit zero state `Scratch::take` guarantees.
pub(crate) fn gather_chain_xh(
    embed: &Matrix,
    input_size: usize,
    hidden_size: usize,
    inputs: &[RowInvocation<'_>],
    s: &mut Scratch,
) -> (Matrix, Matrix) {
    let batch = inputs.len();
    let mut xh = s.take(batch, input_size + hidden_size);
    let mut c = s.take(batch, hidden_size);
    for (r, inv) in inputs.iter().enumerate() {
        let id = inv.token().expect("chain cell invocation requires a token") as usize;
        assert!(
            id < embed.rows(),
            "embedding id {id} >= vocab {}",
            embed.rows()
        );
        let xh_row = xh.row_mut(r);
        xh_row[..input_size].copy_from_slice(embed.row(id));
        match inv.states() {
            [] => {} // Chain start: implicit zero state.
            [st] => {
                assert_eq!(st.h.len(), hidden_size, "state width mismatch");
                xh_row[input_size..].copy_from_slice(st.h);
                c.row_mut(r).copy_from_slice(st.c);
            }
            more => panic!("chain cell invocation with {} states", more.len()),
        }
    }
    (xh, c)
}

/// Emits batched `(h, c)` rows to the caller in batch order.
pub(crate) fn emit_states<F: FnMut(usize, &[f32], &[f32], Option<u32>)>(
    h: &Matrix,
    c: &Matrix,
    emit: &mut F,
) {
    for r in 0..h.rows() {
        emit(r, h.row(r), c.row(r), None);
    }
}

/// A plain LSTM cell with its own embedding table.
///
/// This is the cell type of the paper's "LSTM" application (a chain over
/// an input sentence).
#[derive(Debug, Clone)]
pub struct LstmCell {
    embed: Matrix,
    core: LstmCore,
}

impl LstmCell {
    /// Creates a cell with seeded Xavier weights.
    pub fn seeded(embed_size: usize, hidden_size: usize, vocab: usize, seed: u64) -> Self {
        let embed = xavier_uniform(vocab, embed_size, seed ^ 0x5eed_0001);
        let mut core = LstmCore::seeded(embed_size, hidden_size, seed);
        core.install_token_proj(&embed);
        LstmCell { embed, core }
    }

    /// Embedding width.
    pub fn embed_size(&self) -> usize {
        self.core.input_size
    }

    /// Hidden state width.
    pub fn hidden_size(&self) -> usize {
        self.core.hidden_size
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.embed.rows()
    }

    /// Input tensor shapes per invocation (token embedding row, h row, c row).
    pub fn input_shapes(&self) -> Vec<(usize, usize)> {
        vec![
            (1, self.embed_size()),
            (1, self.hidden_size()),
            (1, self.hidden_size()),
        ]
    }

    /// Fingerprint over all weights.
    pub fn weight_fingerprint(&self) -> u64 {
        crate::fingerprint_weights(&[&self.embed, &self.core.w, &self.core.b])
    }

    /// Runs one batched step; see [`crate::Cell::execute_batch`].
    pub fn execute_batch(&self, inputs: &[InvocationInput<'_>]) -> Vec<CellOutput> {
        self.execute_batch_in(inputs, &mut Scratch::new())
    }

    /// Scratch-arena variant of [`LstmCell::execute_batch`]: every batch
    /// intermediate is taken from (and returned to) `s`.
    pub fn execute_batch_in(
        &self,
        inputs: &[InvocationInput<'_>],
        s: &mut Scratch,
    ) -> Vec<CellOutput> {
        collect_outputs(inputs, |rows, emit| self.execute_rows_in(rows, s, emit))
    }

    /// Row-level executor: gathers borrowed state rows, runs one batched
    /// step and emits `(row, h, c, token)` per invocation instead of
    /// materializing owned [`CellOutput`]s; see
    /// [`crate::Cell::execute_rows_in`].
    pub fn execute_rows_in<F>(&self, inputs: &[RowInvocation<'_>], s: &mut Scratch, mut emit: F)
    where
        F: FnMut(usize, &[f32], &[f32], Option<u32>),
    {
        let (xh, c) = gather_chain_xh(
            &self.embed,
            self.core.input_size,
            self.core.hidden_size,
            inputs,
            s,
        );
        let (h2, c2) = self.core.step_in(&xh, &c, s);
        emit_states(&h2, &c2, &mut emit);
        for m in [xh, c, h2, c2] {
            s.put(m);
        }
    }

    /// Resident-state row layout: `h`-only rows when the token
    /// projection is cached (the usual case), `[x|h]` rows otherwise;
    /// `c` lives in the aux matrix either way. See
    /// `LstmCore::resident_layout`.
    pub fn resident_layout(&self) -> crate::state::ResidentLayout {
        self.core.resident_layout()
    }

    /// Resident-state executor: one fused step over rows `0..rows` of a
    /// persistent `[x|h]` batch (`xh`) and its cell-state side matrix
    /// (`aux`), updating both in place and emitting
    /// `(row, h, c, token)` per row in batch order — the same emit
    /// contract, and bitwise the same outputs, as
    /// [`LstmCell::execute_rows_in`] over equal state rows.
    pub fn step_resident<F>(
        &self,
        xh: &mut Matrix,
        aux: &mut Matrix,
        rows: usize,
        tokens: &[Option<u32>],
        s: &mut Scratch,
        mut emit: F,
    ) where
        F: FnMut(usize, &[f32], &[f32], Option<u32>),
    {
        self.core
            .step_resident_chain(&self.embed, xh, aux, rows, tokens, s);
        let e = self.core.resident_layout().x_width;
        for r in 0..rows {
            emit(r, &xh.row(r)[e..], aux.row(r), None);
        }
    }

    /// Strips the cached token projection so tests can exercise the
    /// full-`[x|h]` resident fallback a too-large vocabulary would
    /// take.
    #[cfg(test)]
    pub(crate) fn drop_token_proj_for_tests(&mut self) {
        self.core.token_proj = None;
    }

    /// Exports the cell's weights (§4.2 persistence).
    pub fn to_bundle(&self) -> WeightBundle {
        let mut b = WeightBundle::new();
        b.insert("embed", self.embed.clone());
        b.insert("w", self.core.w.clone());
        b.insert("b", self.core.b.clone());
        b
    }

    /// Reconstructs the cell from saved weights, inferring shapes.
    pub fn from_bundle(bundle: &WeightBundle) -> Result<Self, String> {
        let embed = expect(bundle, "embed")?;
        let w = expect(bundle, "w")?;
        let hidden = w.cols() / 4;
        let input = embed.cols();
        expect_shape(w, (input + hidden, 4 * hidden), "w")?;
        let b = expect(bundle, "b")?;
        expect_shape(b, (1, 4 * hidden), "b")?;
        let embed = embed.clone();
        let mut core = LstmCore {
            w: w.clone(),
            b: b.clone(),
            input_size: input,
            hidden_size: hidden,
            token_proj: None,
        };
        core.install_token_proj(&embed);
        Ok(LstmCell { embed, core })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::CellState;

    fn cell() -> LstmCell {
        LstmCell::seeded(4, 6, 20, 42)
    }

    #[test]
    fn step_shapes() {
        let c = cell();
        let out = c.execute_batch(&[InvocationInput::token_only(3)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].state.h.len(), 6);
        assert_eq!(out[0].state.c.len(), 6);
        assert_eq!(out[0].token, None);
    }

    #[test]
    fn batched_equals_sequential() {
        // The core correctness property of batching: executing requests
        // together must give bit-identical results to one-at-a-time.
        let c = cell();
        let s1 = c.execute_batch(&[InvocationInput::token_only(3)]);
        let s2 = c.execute_batch(&[InvocationInput::token_only(9)]);
        let both = c.execute_batch(&[
            InvocationInput::token_only(3),
            InvocationInput::token_only(9),
        ]);
        assert_eq!(both[0], s1[0]);
        assert_eq!(both[1], s2[0]);
    }

    #[test]
    fn chained_steps_differ_from_first() {
        let c = cell();
        let first = c.execute_batch(&[InvocationInput::token_only(1)]);
        let second = c.execute_batch(&[InvocationInput::chain(1, &first[0].state)]);
        assert_ne!(first[0].state, second[0].state);
    }

    #[test]
    fn outputs_bounded_by_tanh() {
        let c = cell();
        let mut state = CellState::zeros(6);
        for t in 0..10 {
            let out = c.execute_batch(&[InvocationInput::chain(t % 20, &state)]);
            state = out.into_iter().next().unwrap().state;
            assert!(state.h.iter().all(|v| v.abs() <= 1.0));
        }
    }

    #[test]
    fn deterministic_across_clones() {
        let c = cell();
        let d = c.clone();
        let a = c.execute_batch(&[InvocationInput::token_only(5)]);
        let b = d.execute_batch(&[InvocationInput::token_only(5)]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn missing_token_panics() {
        let c = cell();
        let s = CellState::zeros(6);
        let bad = InvocationInput {
            token: None,
            states: vec![&s],
        };
        let _ = c.execute_batch(&[bad]);
    }

    #[test]
    fn fingerprint_varies_with_seed() {
        let a = LstmCell::seeded(4, 6, 20, 1);
        let b = LstmCell::seeded(4, 6, 20, 2);
        assert_ne!(a.weight_fingerprint(), b.weight_fingerprint());
    }
}
