//! LSTM cell: the paper's workhorse (Hochreiter & Schmidhuber, §2.1).
//!
//! The step computes, with `x` the embedded input and `(h, c)` the
//! previous state:
//!
//! ```text
//! z            = [x, h] · W + b          // (batch, 4h)
//! i, f, g, o   = split(z, 4)
//! c'           = sigmoid(f) * c + sigmoid(i) * tanh(g)
//! h'           = sigmoid(o) * tanh(c')
//! ```
//!
//! This matches the paper's microbenchmark configuration: "one
//! matrix-multiplication operation with input tensor shapes `b × 2h` and
//! `2h × 4h`" (§2.2, footnote 2) when the embedding width equals the
//! hidden width.

use bm_tensor::io::WeightBundle;
use bm_tensor::{ops, xavier_uniform, Matrix, Scratch};

use crate::persist::{expect, expect_shape};
use crate::state::{collect_outputs, CellOutput, InvocationInput, RowInvocation};

/// The weight set and math of one LSTM step, shared by every cell kind
/// that embeds an LSTM (plain, encoder, decoder).
#[derive(Debug, Clone)]
pub(crate) struct LstmCore {
    /// Fused gate weights, `(embed + hidden, 4 * hidden)`.
    pub w: Matrix,
    /// Fused gate bias, `(1, 4 * hidden)`.
    pub b: Matrix,
    pub input_size: usize,
    pub hidden_size: usize,
}

impl LstmCore {
    pub fn seeded(input_size: usize, hidden_size: usize, seed: u64) -> Self {
        LstmCore {
            w: xavier_uniform(input_size + hidden_size, 4 * hidden_size, seed),
            b: Matrix::zeros(1, 4 * hidden_size),
            input_size,
            hidden_size,
        }
    }

    /// One batched LSTM step over a pre-gathered `[x, h]` input.
    ///
    /// `xh` is `(batch, input + hidden)`, `c_prev` is `(batch, hidden)`.
    /// Returns `(h', c')` backed by buffers from `s`. One fused affine
    /// into a scratch gate buffer plus one fused gate kernel — zero
    /// intermediate allocations in steady state, bitwise identical to the
    /// unfused concat/affine/split/activation/mul/add chain.
    pub fn step_in(&self, xh: &Matrix, c_prev: &Matrix, s: &mut Scratch) -> (Matrix, Matrix) {
        debug_assert_eq!(xh.cols(), self.input_size + self.hidden_size);
        debug_assert_eq!(c_prev.cols(), self.hidden_size);
        let batch = xh.rows();
        let mut z = s.take(batch, 4 * self.hidden_size);
        ops::affine_into(xh, &self.w, &self.b, &mut z);
        let mut h_new = s.take(batch, self.hidden_size);
        let mut c_new = s.take(batch, self.hidden_size);
        ops::lstm_gates(&z, c_prev, &mut h_new, &mut c_new);
        s.put(z);
        (h_new, c_new)
    }
}

/// Gathers the batched `[x, h]` input and previous cell state for
/// chain-style invocations directly into scratch buffers: tokens embed
/// into the left `input_size` columns, predecessor states copy into the
/// right `hidden_size` columns (and `c`), and chain starts keep the
/// implicit zero state `Scratch::take` guarantees.
pub(crate) fn gather_chain_xh(
    embed: &Matrix,
    input_size: usize,
    hidden_size: usize,
    inputs: &[RowInvocation<'_>],
    s: &mut Scratch,
) -> (Matrix, Matrix) {
    let batch = inputs.len();
    let mut xh = s.take(batch, input_size + hidden_size);
    let mut c = s.take(batch, hidden_size);
    for (r, inv) in inputs.iter().enumerate() {
        let id = inv.token().expect("chain cell invocation requires a token") as usize;
        assert!(
            id < embed.rows(),
            "embedding id {id} >= vocab {}",
            embed.rows()
        );
        let xh_row = xh.row_mut(r);
        xh_row[..input_size].copy_from_slice(embed.row(id));
        match inv.states() {
            [] => {} // Chain start: implicit zero state.
            [st] => {
                assert_eq!(st.h.len(), hidden_size, "state width mismatch");
                xh_row[input_size..].copy_from_slice(st.h);
                c.row_mut(r).copy_from_slice(st.c);
            }
            more => panic!("chain cell invocation with {} states", more.len()),
        }
    }
    (xh, c)
}

/// Emits batched `(h, c)` rows to the caller in batch order.
pub(crate) fn emit_states<F: FnMut(usize, &[f32], &[f32], Option<u32>)>(
    h: &Matrix,
    c: &Matrix,
    emit: &mut F,
) {
    for r in 0..h.rows() {
        emit(r, h.row(r), c.row(r), None);
    }
}

/// A plain LSTM cell with its own embedding table.
///
/// This is the cell type of the paper's "LSTM" application (a chain over
/// an input sentence).
#[derive(Debug, Clone)]
pub struct LstmCell {
    embed: Matrix,
    core: LstmCore,
}

impl LstmCell {
    /// Creates a cell with seeded Xavier weights.
    pub fn seeded(embed_size: usize, hidden_size: usize, vocab: usize, seed: u64) -> Self {
        LstmCell {
            embed: xavier_uniform(vocab, embed_size, seed ^ 0x5eed_0001),
            core: LstmCore::seeded(embed_size, hidden_size, seed),
        }
    }

    /// Embedding width.
    pub fn embed_size(&self) -> usize {
        self.core.input_size
    }

    /// Hidden state width.
    pub fn hidden_size(&self) -> usize {
        self.core.hidden_size
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.embed.rows()
    }

    /// Input tensor shapes per invocation (token embedding row, h row, c row).
    pub fn input_shapes(&self) -> Vec<(usize, usize)> {
        vec![
            (1, self.embed_size()),
            (1, self.hidden_size()),
            (1, self.hidden_size()),
        ]
    }

    /// Fingerprint over all weights.
    pub fn weight_fingerprint(&self) -> u64 {
        crate::fingerprint_weights(&[&self.embed, &self.core.w, &self.core.b])
    }

    /// Runs one batched step; see [`crate::Cell::execute_batch`].
    pub fn execute_batch(&self, inputs: &[InvocationInput<'_>]) -> Vec<CellOutput> {
        self.execute_batch_in(inputs, &mut Scratch::new())
    }

    /// Scratch-arena variant of [`LstmCell::execute_batch`]: every batch
    /// intermediate is taken from (and returned to) `s`.
    pub fn execute_batch_in(
        &self,
        inputs: &[InvocationInput<'_>],
        s: &mut Scratch,
    ) -> Vec<CellOutput> {
        collect_outputs(inputs, |rows, emit| self.execute_rows_in(rows, s, emit))
    }

    /// Row-level executor: gathers borrowed state rows, runs one batched
    /// step and emits `(row, h, c, token)` per invocation instead of
    /// materializing owned [`CellOutput`]s; see
    /// [`crate::Cell::execute_rows_in`].
    pub fn execute_rows_in<F>(&self, inputs: &[RowInvocation<'_>], s: &mut Scratch, mut emit: F)
    where
        F: FnMut(usize, &[f32], &[f32], Option<u32>),
    {
        let (xh, c) = gather_chain_xh(
            &self.embed,
            self.core.input_size,
            self.core.hidden_size,
            inputs,
            s,
        );
        let (h2, c2) = self.core.step_in(&xh, &c, s);
        emit_states(&h2, &c2, &mut emit);
        for m in [xh, c, h2, c2] {
            s.put(m);
        }
    }

    /// Exports the cell's weights (§4.2 persistence).
    pub fn to_bundle(&self) -> WeightBundle {
        let mut b = WeightBundle::new();
        b.insert("embed", self.embed.clone());
        b.insert("w", self.core.w.clone());
        b.insert("b", self.core.b.clone());
        b
    }

    /// Reconstructs the cell from saved weights, inferring shapes.
    pub fn from_bundle(bundle: &WeightBundle) -> Result<Self, String> {
        let embed = expect(bundle, "embed")?;
        let w = expect(bundle, "w")?;
        let hidden = w.cols() / 4;
        let input = embed.cols();
        expect_shape(w, (input + hidden, 4 * hidden), "w")?;
        let b = expect(bundle, "b")?;
        expect_shape(b, (1, 4 * hidden), "b")?;
        Ok(LstmCell {
            embed: embed.clone(),
            core: LstmCore {
                w: w.clone(),
                b: b.clone(),
                input_size: input,
                hidden_size: hidden,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::CellState;

    fn cell() -> LstmCell {
        LstmCell::seeded(4, 6, 20, 42)
    }

    #[test]
    fn step_shapes() {
        let c = cell();
        let out = c.execute_batch(&[InvocationInput::token_only(3)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].state.h.len(), 6);
        assert_eq!(out[0].state.c.len(), 6);
        assert_eq!(out[0].token, None);
    }

    #[test]
    fn batched_equals_sequential() {
        // The core correctness property of batching: executing requests
        // together must give bit-identical results to one-at-a-time.
        let c = cell();
        let s1 = c.execute_batch(&[InvocationInput::token_only(3)]);
        let s2 = c.execute_batch(&[InvocationInput::token_only(9)]);
        let both = c.execute_batch(&[
            InvocationInput::token_only(3),
            InvocationInput::token_only(9),
        ]);
        assert_eq!(both[0], s1[0]);
        assert_eq!(both[1], s2[0]);
    }

    #[test]
    fn chained_steps_differ_from_first() {
        let c = cell();
        let first = c.execute_batch(&[InvocationInput::token_only(1)]);
        let second = c.execute_batch(&[InvocationInput::chain(1, &first[0].state)]);
        assert_ne!(first[0].state, second[0].state);
    }

    #[test]
    fn outputs_bounded_by_tanh() {
        let c = cell();
        let mut state = CellState::zeros(6);
        for t in 0..10 {
            let out = c.execute_batch(&[InvocationInput::chain(t % 20, &state)]);
            state = out.into_iter().next().unwrap().state;
            assert!(state.h.iter().all(|v| v.abs() <= 1.0));
        }
    }

    #[test]
    fn deterministic_across_clones() {
        let c = cell();
        let d = c.clone();
        let a = c.execute_batch(&[InvocationInput::token_only(5)]);
        let b = d.execute_batch(&[InvocationInput::token_only(5)]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn missing_token_panics() {
        let c = cell();
        let s = CellState::zeros(6);
        let bad = InvocationInput {
            token: None,
            states: vec![&s],
        };
        let _ = c.execute_batch(&[bad]);
    }

    #[test]
    fn fingerprint_varies_with_seed() {
        let a = LstmCell::seeded(4, 6, 20, 1);
        let b = LstmCell::seeded(4, 6, 20, 2);
        assert_ne!(a.weight_fingerprint(), b.weight_fingerprint());
    }
}
