//! Seq2Seq encoder and decoder cells (§7.4, Figure 12).
//!
//! "A basic Seq2Seq model contains two types of RNN cells: encoder and
//! decoder. … In addition to the state, the decoder cell outputs a word
//! as well, which is obtained by applying a linear transformation and an
//! argmax. The output word is also fed to the next step as the input."
//!
//! Encoder and decoder do not share weights, so they are distinct cell
//! types and are batched separately (the paper gives decoders priority
//! over encoders, §4.3).

use bm_tensor::io::WeightBundle;
use bm_tensor::{ops, xavier_uniform, Matrix, Scratch};

use crate::lstm::{emit_states, gather_chain_xh, LstmCore};
use crate::persist::{expect, expect_shape};
use crate::state::{collect_outputs, CellOutput, InvocationInput, RowInvocation};

/// A Seq2Seq encoder step: embedding lookup followed by an LSTM step.
#[derive(Debug, Clone)]
pub struct EncoderCell {
    embed: Matrix,
    core: LstmCore,
}

impl EncoderCell {
    /// Creates a cell with seeded Xavier weights.
    pub fn seeded(embed_size: usize, hidden_size: usize, vocab: usize, seed: u64) -> Self {
        let embed = xavier_uniform(vocab, embed_size, seed ^ 0xe4c0_0001);
        let mut core = LstmCore::seeded(embed_size, hidden_size, seed ^ 0xe4c0_0002);
        core.install_token_proj(&embed);
        EncoderCell { embed, core }
    }

    /// Embedding width.
    pub fn embed_size(&self) -> usize {
        self.core.input_size
    }

    /// Hidden state width.
    pub fn hidden_size(&self) -> usize {
        self.core.hidden_size
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.embed.rows()
    }

    /// Input tensor shapes per invocation.
    pub fn input_shapes(&self) -> Vec<(usize, usize)> {
        vec![
            (1, self.embed_size()),
            (1, self.hidden_size()),
            (1, self.hidden_size()),
        ]
    }

    /// Fingerprint over all weights.
    pub fn weight_fingerprint(&self) -> u64 {
        crate::fingerprint_weights(&[&self.embed, &self.core.w, &self.core.b])
    }

    /// Runs one batched step; see [`crate::Cell::execute_batch`].
    pub fn execute_batch(&self, inputs: &[InvocationInput<'_>]) -> Vec<CellOutput> {
        self.execute_batch_in(inputs, &mut Scratch::new())
    }

    /// Scratch-arena variant of [`EncoderCell::execute_batch`].
    pub fn execute_batch_in(
        &self,
        inputs: &[InvocationInput<'_>],
        s: &mut Scratch,
    ) -> Vec<CellOutput> {
        collect_outputs(inputs, |rows, emit| self.execute_rows_in(rows, s, emit))
    }

    /// Row-level executor; see [`crate::Cell::execute_rows_in`].
    pub fn execute_rows_in<F>(&self, inputs: &[RowInvocation<'_>], s: &mut Scratch, mut emit: F)
    where
        F: FnMut(usize, &[f32], &[f32], Option<u32>),
    {
        let (xh, c) = gather_chain_xh(
            &self.embed,
            self.core.input_size,
            self.core.hidden_size,
            inputs,
            s,
        );
        let (h2, c2) = self.core.step_in(&xh, &c, s);
        emit_states(&h2, &c2, &mut emit);
        for m in [xh, c, h2, c2] {
            s.put(m);
        }
    }

    /// Resident-state row layout; identical to [`LstmCell`]'s
    /// (`h`-only rows with a cached token projection, `[x|h]` rows
    /// otherwise; `c` in aux).
    ///
    /// [`LstmCell`]: crate::LstmCell
    pub fn resident_layout(&self) -> crate::state::ResidentLayout {
        self.core.resident_layout()
    }

    /// Resident-state executor; see [`LstmCell::step_resident`] — the
    /// encoder is the same fused chain step.
    ///
    /// [`LstmCell::step_resident`]: crate::LstmCell::step_resident
    pub fn step_resident<F>(
        &self,
        xh: &mut Matrix,
        aux: &mut Matrix,
        rows: usize,
        tokens: &[Option<u32>],
        s: &mut Scratch,
        mut emit: F,
    ) where
        F: FnMut(usize, &[f32], &[f32], Option<u32>),
    {
        self.core
            .step_resident_chain(&self.embed, xh, aux, rows, tokens, s);
        let e = self.core.resident_layout().x_width;
        for r in 0..rows {
            emit(r, &xh.row(r)[e..], aux.row(r), None);
        }
    }

    /// Strips the cached token projection so tests can exercise the
    /// full-`[x|h]` resident fallback a too-large vocabulary would
    /// take.
    #[cfg(test)]
    pub(crate) fn drop_token_proj_for_tests(&mut self) {
        self.core.token_proj = None;
    }

    /// Exports the cell's weights (§4.2 persistence).
    pub fn to_bundle(&self) -> WeightBundle {
        let mut b = WeightBundle::new();
        b.insert("embed", self.embed.clone());
        b.insert("w", self.core.w.clone());
        b.insert("b", self.core.b.clone());
        b
    }

    /// Reconstructs the cell from saved weights, inferring shapes.
    pub fn from_bundle(bundle: &WeightBundle) -> Result<Self, String> {
        let embed = expect(bundle, "embed")?;
        let w = expect(bundle, "w")?;
        let hidden = w.cols() / 4;
        let input = embed.cols();
        expect_shape(w, (input + hidden, 4 * hidden), "w")?;
        let b = expect(bundle, "b")?;
        expect_shape(b, (1, 4 * hidden), "b")?;
        let embed = embed.clone();
        let mut core = LstmCore {
            w: w.clone(),
            b: b.clone(),
            input_size: input,
            hidden_size: hidden,
            token_proj: None,
        };
        core.install_token_proj(&embed);
        Ok(EncoderCell { embed, core })
    }
}

/// A Seq2Seq "feed previous" decoder step.
///
/// Consumes the previously produced token (or `<go>` at the start) plus
/// the previous state; produces the next state *and* the next token via a
/// vocabulary projection and argmax. The projection dominates decode
/// cost — "the decoding phase constitutes about 75 % of the entire
/// computation due to performing the output projection from the hidden
/// dimension to the vocabulary dimension" (§7.4).
#[derive(Debug, Clone)]
pub struct DecoderCell {
    embed: Matrix,
    core: LstmCore,
    /// Output projection, `(hidden, vocab)`.
    proj_w: Matrix,
    proj_b: Matrix,
}

impl DecoderCell {
    /// Creates a cell with seeded Xavier weights.
    pub fn seeded(embed_size: usize, hidden_size: usize, vocab: usize, seed: u64) -> Self {
        let embed = xavier_uniform(vocab, embed_size, seed ^ 0xdec0_0001);
        let mut core = LstmCore::seeded(embed_size, hidden_size, seed ^ 0xdec0_0002);
        core.install_token_proj(&embed);
        DecoderCell {
            embed,
            core,
            proj_w: xavier_uniform(hidden_size, vocab, seed ^ 0xdec0_0003),
            proj_b: Matrix::zeros(1, vocab),
        }
    }

    /// Embedding width.
    pub fn embed_size(&self) -> usize {
        self.core.input_size
    }

    /// Hidden state width.
    pub fn hidden_size(&self) -> usize {
        self.core.hidden_size
    }

    /// Vocabulary size (projection output width).
    pub fn vocab_size(&self) -> usize {
        self.proj_w.cols()
    }

    /// Input tensor shapes per invocation.
    pub fn input_shapes(&self) -> Vec<(usize, usize)> {
        vec![
            (1, self.embed_size()),
            (1, self.hidden_size()),
            (1, self.hidden_size()),
        ]
    }

    /// Fingerprint over all weights.
    pub fn weight_fingerprint(&self) -> u64 {
        crate::fingerprint_weights(&[
            &self.embed,
            &self.core.w,
            &self.core.b,
            &self.proj_w,
            &self.proj_b,
        ])
    }

    /// Runs one batched step; see [`crate::Cell::execute_batch`].
    pub fn execute_batch(&self, inputs: &[InvocationInput<'_>]) -> Vec<CellOutput> {
        self.execute_batch_in(inputs, &mut Scratch::new())
    }

    /// Scratch-arena variant of [`DecoderCell::execute_batch`].
    pub fn execute_batch_in(
        &self,
        inputs: &[InvocationInput<'_>],
        s: &mut Scratch,
    ) -> Vec<CellOutput> {
        collect_outputs(inputs, |rows, emit| self.execute_rows_in(rows, s, emit))
    }

    /// Row-level executor; see [`crate::Cell::execute_rows_in`]. Each
    /// emitted row carries the argmax-projected output word as its token.
    pub fn execute_rows_in<F>(&self, inputs: &[RowInvocation<'_>], s: &mut Scratch, mut emit: F)
    where
        F: FnMut(usize, &[f32], &[f32], Option<u32>),
    {
        let (xh, c) = gather_chain_xh(
            &self.embed,
            self.core.input_size,
            self.core.hidden_size,
            inputs,
            s,
        );
        let (h2, c2) = self.core.step_in(&xh, &c, s);
        let mut logits = s.take(inputs.len(), self.vocab_size());
        ops::affine_into(&h2, &self.proj_w, &self.proj_b, &mut logits);
        let words = ops::argmax(&logits);
        for (r, w) in words.into_iter().enumerate() {
            emit(r, h2.row(r), c2.row(r), Some(w as u32));
        }
        for m in [xh, c, h2, c2, logits] {
            s.put(m);
        }
    }

    /// Resident-state row layout; identical to [`LstmCell`]'s
    /// (`h`-only rows with a cached token projection, `[x|h]` rows
    /// otherwise; `c` in aux).
    ///
    /// [`LstmCell`]: crate::LstmCell
    pub fn resident_layout(&self) -> crate::state::ResidentLayout {
        self.core.resident_layout()
    }

    /// Resident-state executor: the fused chain step updates `xh`/`aux`
    /// in place, then the new hidden rows are gathered into a scratch
    /// matrix for the vocabulary projection (the projection GEMM needs a
    /// contiguous `(rows, hidden)` operand; this one `hidden`-float copy
    /// per row is the decoder's only resident-path state movement, and
    /// the projection itself dominates decode cost, §7.4). Emits
    /// `(row, h, c, Some(word))` per row, bitwise identical to
    /// [`DecoderCell::execute_rows_in`] over equal state rows.
    pub fn step_resident<F>(
        &self,
        xh: &mut Matrix,
        aux: &mut Matrix,
        rows: usize,
        tokens: &[Option<u32>],
        s: &mut Scratch,
        mut emit: F,
    ) where
        F: FnMut(usize, &[f32], &[f32], Option<u32>),
    {
        self.core
            .step_resident_chain(&self.embed, xh, aux, rows, tokens, s);
        let e = self.core.resident_layout().x_width;
        let hsz = self.core.hidden_size;
        // Both buffers are fully overwritten before being read.
        let mut h2 = s.take_dirty(rows, hsz);
        for r in 0..rows {
            h2.row_mut(r).copy_from_slice(&xh.row(r)[e..]);
        }
        let mut logits = s.take_dirty(rows, self.vocab_size());
        ops::affine_into(&h2, &self.proj_w, &self.proj_b, &mut logits);
        let words = ops::argmax(&logits);
        for (r, w) in words.into_iter().enumerate() {
            emit(r, &xh.row(r)[e..], aux.row(r), Some(w as u32));
        }
        for m in [h2, logits] {
            s.put(m);
        }
    }

    /// Strips the cached token projection so tests can exercise the
    /// full-`[x|h]` resident fallback a too-large vocabulary would
    /// take.
    #[cfg(test)]
    pub(crate) fn drop_token_proj_for_tests(&mut self) {
        self.core.token_proj = None;
    }

    /// Exports the cell's weights (§4.2 persistence).
    pub fn to_bundle(&self) -> WeightBundle {
        let mut b = WeightBundle::new();
        b.insert("embed", self.embed.clone());
        b.insert("w", self.core.w.clone());
        b.insert("b", self.core.b.clone());
        b.insert("proj_w", self.proj_w.clone());
        b.insert("proj_b", self.proj_b.clone());
        b
    }

    /// Reconstructs the cell from saved weights, inferring shapes.
    pub fn from_bundle(bundle: &WeightBundle) -> Result<Self, String> {
        let embed = expect(bundle, "embed")?;
        let w = expect(bundle, "w")?;
        let hidden = w.cols() / 4;
        let input = embed.cols();
        expect_shape(w, (input + hidden, 4 * hidden), "w")?;
        let b = expect(bundle, "b")?;
        expect_shape(b, (1, 4 * hidden), "b")?;
        let proj_w = expect(bundle, "proj_w")?;
        let vocab = embed.rows();
        expect_shape(proj_w, (hidden, vocab), "proj_w")?;
        let proj_b = expect(bundle, "proj_b")?;
        expect_shape(proj_b, (1, vocab), "proj_b")?;
        let embed = embed.clone();
        let mut core = LstmCore {
            w: w.clone(),
            b: b.clone(),
            input_size: input,
            hidden_size: hidden,
            token_proj: None,
        };
        core.install_token_proj(&embed);
        Ok(DecoderCell {
            embed,
            core,
            proj_w: proj_w.clone(),
            proj_b: proj_b.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::CellState;

    #[test]
    fn encoder_batched_equals_sequential() {
        let e = EncoderCell::seeded(4, 6, 15, 5);
        let a = e.execute_batch(&[InvocationInput::token_only(2)]);
        let b = e.execute_batch(&[InvocationInput::token_only(11)]);
        let both = e.execute_batch(&[
            InvocationInput::token_only(2),
            InvocationInput::token_only(11),
        ]);
        assert_eq!(both[0], a[0]);
        assert_eq!(both[1], b[0]);
    }

    #[test]
    fn decoder_emits_token_in_vocab() {
        let d = DecoderCell::seeded(4, 6, 15, 6);
        let out = d.execute_batch(&[InvocationInput::token_only(0)]);
        let tok = out[0].token.expect("decoder must emit a token");
        assert!((tok as usize) < d.vocab_size());
    }

    #[test]
    fn decoder_feed_previous_loop_is_deterministic() {
        let d = DecoderCell::seeded(4, 8, 20, 7);
        let run = |steps: usize| {
            let mut tokens = Vec::new();
            let mut state = CellState::zeros(8);
            let mut tok = 0u32; // <go>
            for _ in 0..steps {
                let out = d.execute_batch(&[InvocationInput::chain(tok, &state)]);
                let o = out.into_iter().next().unwrap();
                tok = o.token.unwrap();
                state = o.state;
                tokens.push(tok);
            }
            tokens
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn encoder_and_decoder_have_distinct_signatures() {
        // Same shapes, same seed — still different weights (namespaced
        // seeds) and different kinds.
        let e = EncoderCell::seeded(4, 6, 15, 9);
        let d = DecoderCell::seeded(4, 6, 15, 9);
        assert_ne!(e.weight_fingerprint(), d.weight_fingerprint());
    }

    #[test]
    fn decoder_batched_equals_sequential_including_tokens() {
        let d = DecoderCell::seeded(4, 6, 25, 13);
        let s1 = CellState::zeros(6);
        let s2 = {
            let out = d.execute_batch(&[InvocationInput::token_only(3)]);
            out.into_iter().next().unwrap().state
        };
        let a = d.execute_batch(&[InvocationInput::chain(1, &s1)]);
        let b = d.execute_batch(&[InvocationInput::chain(2, &s2)]);
        let both = d.execute_batch(&[
            InvocationInput::chain(1, &s1),
            InvocationInput::chain(2, &s2),
        ]);
        assert_eq!(both[0], a[0]);
        assert_eq!(both[1], b[0]);
    }
}
