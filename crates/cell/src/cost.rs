//! Analytic FLOP accounting per cell kind.
//!
//! The simulated GPU in `bm-device` converts these counts into kernel
//! execution times via a calibrated roofline-style curve (fixed launch
//! floor plus a compute-bound linear region), matching the shape of the
//! paper's Figure 3 microbenchmark.
//!
//! Counts follow the usual convention of 2 FLOPs per multiply-accumulate
//! and ignore element-wise activations' transcendental cost (they are a
//! rounding error next to the matmuls at hidden size 1024).

/// FLOPs of a dense `(batch, m) x (m, n)` matmul.
pub fn matmul_flops(batch: usize, m: usize, n: usize) -> u64 {
    2 * batch as u64 * m as u64 * n as u64
}

/// FLOPs of one LSTM step with input width `e` and hidden width `h`.
///
/// One fused `(batch, e + h) x (e + h, 4h)` matmul plus element-wise
/// gate math (~9 ops per hidden unit).
pub fn lstm_flops(batch: usize, e: usize, h: usize) -> u64 {
    matmul_flops(batch, e + h, 4 * h) + 9 * batch as u64 * h as u64
}

/// FLOPs of one GRU step with input width `e` and hidden width `h`.
///
/// Three `(batch, e + h) x (e + h, h)` matmuls plus element-wise math.
pub fn gru_flops(batch: usize, e: usize, h: usize) -> u64 {
    3 * matmul_flops(batch, e + h, h) + 7 * batch as u64 * h as u64
}

/// FLOPs of the decoder output projection `(batch, h) x (h, vocab)`
/// plus the row-wise argmax.
pub fn projection_flops(batch: usize, h: usize, vocab: usize) -> u64 {
    matmul_flops(batch, h, vocab) + batch as u64 * vocab as u64
}

/// FLOPs of one TreeLSTM leaf cell (three `(batch, e) x (e, h)` matmuls).
pub fn tree_leaf_flops(batch: usize, e: usize, h: usize) -> u64 {
    3 * matmul_flops(batch, e, h) + 6 * batch as u64 * h as u64
}

/// FLOPs of one binary TreeLSTM internal cell
/// (five `(batch, 2h) x (2h, h)` matmuls).
pub fn tree_internal_flops(batch: usize, h: usize) -> u64 {
    5 * matmul_flops(batch, 2 * h, h) + 12 * batch as u64 * h as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_flops_scale_linearly_in_batch() {
        assert_eq!(matmul_flops(2, 8, 8), 2 * matmul_flops(1, 8, 8));
        assert_eq!(matmul_flops(1, 4, 4), 32);
    }

    #[test]
    fn lstm_dominated_by_fused_matmul() {
        // h = e = 1024: the paper's configuration. The matmul term is
        // 2 * 2048 * 4096 = ~16.8 MFLOPs per row.
        let per_row = lstm_flops(1, 1024, 1024);
        assert!(per_row > 16_000_000);
        assert!(per_row < 17_000_000);
    }

    #[test]
    fn decoder_projection_dominates_decode() {
        // "The decoding phase constitutes about 75 % of the entire
        // computation" (§7.4): with vocab 30k and h = 1024, projection
        // FLOPs should far exceed the LSTM step itself.
        let step = lstm_flops(1, 1024, 1024);
        let proj = projection_flops(1, 1024, 30_000);
        assert!(proj > 3 * step);
    }

    #[test]
    fn tree_cells_have_positive_costs() {
        assert!(tree_leaf_flops(1, 64, 64) > 0);
        assert!(tree_internal_flops(1, 64) > tree_leaf_flops(1, 64, 64));
    }

    #[test]
    fn all_costs_monotone_in_batch() {
        for b in 1..16 {
            assert!(lstm_flops(b + 1, 32, 32) > lstm_flops(b, 32, 32));
            assert!(gru_flops(b + 1, 32, 32) > gru_flops(b, 32, 32));
            assert!(projection_flops(b + 1, 32, 100) > projection_flops(b, 32, 100));
            assert!(tree_leaf_flops(b + 1, 32, 32) > tree_leaf_flops(b, 32, 32));
            assert!(tree_internal_flops(b + 1, 32) > tree_internal_flops(b, 32));
        }
    }
}
