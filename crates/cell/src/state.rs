//! Per-invocation cell state, inputs and outputs.
//!
//! In the real runtime, outputs of each executed cell node live as
//! per-request row vectors owned by the request processor. The §4.3
//! gather path assembles a batched task by copying the relevant rows
//! into contiguous matrices before execution and scattering results
//! back afterwards; the resident-state path ([`ResidentLayout`],
//! `Cell::step_resident`) instead keeps each chain request's recurrent
//! state parked in a row of a persistent batch matrix, so steady-state
//! steps move no state at all and only the scatter (publication of
//! results to the state arena) remains. These types are the per-row
//! currency of both protocols.

/// The recurrent state one cell invocation produces for one request.
///
/// For LSTM-family cells both `h` and `c` are populated; for GRU cells
/// `c` is empty.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CellState {
    /// Hidden state row.
    pub h: Vec<f32>,
    /// Memory cell row (empty for cells without a memory cell).
    pub c: Vec<f32>,
}

impl CellState {
    /// A zero state of hidden width `h` with a memory cell of the same width.
    pub fn zeros(h: usize) -> Self {
        CellState {
            h: vec![0.0; h],
            c: vec![0.0; h],
        }
    }

    /// Width of the hidden state.
    pub fn width(&self) -> usize {
        self.h.len()
    }
}

/// One invocation's inputs within a batched task.
///
/// `states` carries 0, 1 or 2 predecessor states depending on the cell's
/// arity (0 for tree leaves, 1 for chain cells, 2 for tree internal
/// cells). `token` is the input word id for token-taking cells.
#[derive(Debug, Clone)]
pub struct InvocationInput<'a> {
    /// Input token id, if the cell consumes one.
    pub token: Option<u32>,
    /// Predecessor recurrent states, in cell-defined order
    /// (e.g. `[left, right]` for tree internal cells).
    pub states: Vec<&'a CellState>,
}

impl<'a> InvocationInput<'a> {
    /// An invocation with only a token (tree leaf, or chain start with an
    /// implicit zero state).
    pub fn token_only(token: u32) -> Self {
        InvocationInput {
            token: Some(token),
            states: Vec::new(),
        }
    }

    /// A chain-cell invocation: one token plus the predecessor state.
    pub fn chain(token: u32, prev: &'a CellState) -> Self {
        InvocationInput {
            token: Some(token),
            states: vec![prev],
        }
    }

    /// A tree-internal invocation combining two child states.
    pub fn tree(left: &'a CellState, right: &'a CellState) -> Self {
        InvocationInput {
            token: None,
            states: vec![left, right],
        }
    }
}

/// How a chain cell lays its recurrent state out across the two
/// persistent matrices of a resident batch (`xh` and `aux`).
///
/// Chain cells that opt into the resident-state plane keep each active
/// request's state as one row shared between:
///
/// - `xh`, the `(capacity, x_width + hidden)` fused-affine input whose
///   left `x_width` columns receive the embedded token each step;
/// - `aux`, a `(capacity, aux_width)` side matrix for the state
///   component that cannot live inside `xh`.
///
/// LSTM-family cells park `h` in `xh`'s right columns (the fused affine
/// reads `[x|h]` directly, zero copies at steady state) and `c` in
/// `aux`. GRU cells park `h` in `aux` instead, because the candidate
/// gate rewrites `xh`'s right half to `r * h` in place each step — the
/// one retained per-step copy (`aux` row into `xh`) is documented on
/// `GruCell::step_resident`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidentLayout {
    /// Embedded-input width: the left columns of `xh` rewritten per step.
    pub x_width: usize,
    /// Hidden-state width.
    pub hidden: usize,
    /// `true` when `h` lives in `xh`'s right `hidden` columns
    /// (LSTM-family); `false` when it lives in `aux` (GRU).
    pub h_in_xh: bool,
    /// Row width of the `aux` matrix (`c` width for LSTM-family cells,
    /// `h` width for GRU).
    pub aux_width: usize,
}

impl ResidentLayout {
    /// Total column count of the resident `xh` matrix.
    pub fn xh_width(&self) -> usize {
        self.x_width + self.hidden
    }
}

/// A borrowed view of one predecessor state: raw rows living in someone
/// else's storage (a state-arena slot, an owned [`CellState`], a batch
/// matrix).
///
/// `c` is empty for cells without a memory component (GRU).
#[derive(Debug, Clone, Copy)]
pub struct StateRef<'a> {
    /// Hidden state row.
    pub h: &'a [f32],
    /// Memory cell row (empty for cells without a memory cell).
    pub c: &'a [f32],
}

impl<'a> StateRef<'a> {
    /// Borrows an owned [`CellState`].
    pub fn of(state: &'a CellState) -> Self {
        StateRef {
            h: &state.h,
            c: &state.c,
        }
    }
}

const EMPTY_STATE: StateRef<'static> = StateRef { h: &[], c: &[] };

/// One invocation's inputs within a batched task, as borrowed rows.
///
/// The zero-copy counterpart of [`InvocationInput`]: predecessor states
/// are raw row slices stored inline (no per-invocation `Vec`), so the
/// runtime can point invocations straight at state-arena rows when
/// gathering a batch.
#[derive(Debug, Clone, Copy)]
pub struct RowInvocation<'a> {
    token: Option<u32>,
    states: [StateRef<'a>; 2],
    n_states: u8,
}

impl<'a> RowInvocation<'a> {
    /// An invocation with only a token (tree leaf, or chain start with an
    /// implicit zero state).
    pub fn token_only(token: u32) -> Self {
        RowInvocation {
            token: Some(token),
            states: [EMPTY_STATE; 2],
            n_states: 0,
        }
    }

    /// A chain-cell invocation: one token plus the predecessor state.
    pub fn chain(token: u32, prev: StateRef<'a>) -> Self {
        RowInvocation {
            token: Some(token),
            states: [prev, EMPTY_STATE],
            n_states: 1,
        }
    }

    /// A tree-internal invocation combining two child states.
    pub fn tree(left: StateRef<'a>, right: StateRef<'a>) -> Self {
        RowInvocation {
            token: None,
            states: [left, right],
            n_states: 2,
        }
    }

    /// An invocation from an arbitrary token and state list, as resolved
    /// by the runtime from a task entry.
    ///
    /// # Panics
    ///
    /// Panics if more than two states are supplied.
    pub fn new(token: Option<u32>, states_in: &[StateRef<'a>]) -> Self {
        assert!(
            states_in.len() <= 2,
            "invocation with {} states",
            states_in.len()
        );
        let mut states = [EMPTY_STATE; 2];
        states[..states_in.len()].copy_from_slice(states_in);
        RowInvocation {
            token,
            states,
            n_states: states_in.len() as u8,
        }
    }

    /// Input token id, if the cell consumes one.
    pub fn token(&self) -> Option<u32> {
        self.token
    }

    /// Predecessor states, in cell-defined order.
    pub fn states(&self) -> &[StateRef<'a>] {
        &self.states[..self.n_states as usize]
    }
}

impl<'a> From<&InvocationInput<'a>> for RowInvocation<'a> {
    fn from(inv: &InvocationInput<'a>) -> Self {
        assert!(
            inv.states.len() <= 2,
            "invocation with {} states",
            inv.states.len()
        );
        let mut states = [EMPTY_STATE; 2];
        for (slot, st) in states.iter_mut().zip(&inv.states) {
            *slot = StateRef::of(st);
        }
        RowInvocation {
            token: inv.token,
            states,
            n_states: inv.states.len() as u8,
        }
    }
}

/// Runs a row-emitting executor over owned-state invocations and
/// collects its rows into [`CellOutput`]s — the compatibility bridge
/// that keeps `execute_batch` bit-identical to the zero-copy path.
pub(crate) fn collect_outputs(
    inputs: &[InvocationInput<'_>],
    run: impl FnOnce(&[RowInvocation<'_>], &mut dyn FnMut(usize, &[f32], &[f32], Option<u32>)),
) -> Vec<CellOutput> {
    let rows: Vec<RowInvocation<'_>> = inputs.iter().map(RowInvocation::from).collect();
    let mut outs: Vec<CellOutput> = Vec::with_capacity(inputs.len());
    run(&rows, &mut |row, h, c, token| {
        debug_assert_eq!(row, outs.len(), "cells emit rows in batch order");
        outs.push(CellOutput {
            state: CellState {
                h: h.to_vec(),
                c: c.to_vec(),
            },
            token,
        });
    });
    outs
}

/// One invocation's outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutput {
    /// The produced recurrent state.
    pub state: CellState,
    /// The produced token (decoder cells only).
    pub token: Option<u32>,
}

impl CellOutput {
    /// An output carrying only a state.
    pub fn state_only(state: CellState) -> Self {
        CellOutput { state, token: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_state_shape() {
        let s = CellState::zeros(4);
        assert_eq!(s.width(), 4);
        assert_eq!(s.c.len(), 4);
        assert!(s.h.iter().chain(s.c.iter()).all(|&v| v == 0.0));
    }

    #[test]
    fn invocation_constructors() {
        let s = CellState::zeros(2);
        let t = InvocationInput::token_only(7);
        assert_eq!(t.token, Some(7));
        assert!(t.states.is_empty());

        let c = InvocationInput::chain(3, &s);
        assert_eq!(c.states.len(), 1);

        let s2 = CellState::zeros(2);
        let tr = InvocationInput::tree(&s, &s2);
        assert_eq!(tr.token, None);
        assert_eq!(tr.states.len(), 2);
    }

    #[test]
    fn row_invocation_mirrors_owned_constructors() {
        let s = CellState::zeros(3);
        let chain = RowInvocation::chain(5, StateRef::of(&s));
        assert_eq!(chain.token(), Some(5));
        assert_eq!(chain.states().len(), 1);
        assert_eq!(chain.states()[0].h.len(), 3);

        let only = RowInvocation::token_only(1);
        assert!(only.states().is_empty());

        let tree = RowInvocation::tree(StateRef::of(&s), StateRef::of(&s));
        assert_eq!(tree.token(), None);
        assert_eq!(tree.states().len(), 2);

        let owned = InvocationInput::chain(5, &s);
        let converted = RowInvocation::from(&owned);
        assert_eq!(converted.token(), Some(5));
        assert_eq!(converted.states().len(), 1);
    }
}
