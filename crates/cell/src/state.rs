//! Per-invocation cell state, inputs and outputs.
//!
//! In the real runtime, outputs of each executed cell node live as
//! per-request row vectors owned by the request processor; a batched task
//! *gathers* the relevant rows into contiguous matrices before execution
//! and scatters results back afterwards (§4.3). These types are the
//! per-row currency of that protocol.

/// The recurrent state one cell invocation produces for one request.
///
/// For LSTM-family cells both `h` and `c` are populated; for GRU cells
/// `c` is empty.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CellState {
    /// Hidden state row.
    pub h: Vec<f32>,
    /// Memory cell row (empty for cells without a memory cell).
    pub c: Vec<f32>,
}

impl CellState {
    /// A zero state of hidden width `h` with a memory cell of the same width.
    pub fn zeros(h: usize) -> Self {
        CellState {
            h: vec![0.0; h],
            c: vec![0.0; h],
        }
    }

    /// Width of the hidden state.
    pub fn width(&self) -> usize {
        self.h.len()
    }
}

/// One invocation's inputs within a batched task.
///
/// `states` carries 0, 1 or 2 predecessor states depending on the cell's
/// arity (0 for tree leaves, 1 for chain cells, 2 for tree internal
/// cells). `token` is the input word id for token-taking cells.
#[derive(Debug, Clone)]
pub struct InvocationInput<'a> {
    /// Input token id, if the cell consumes one.
    pub token: Option<u32>,
    /// Predecessor recurrent states, in cell-defined order
    /// (e.g. `[left, right]` for tree internal cells).
    pub states: Vec<&'a CellState>,
}

impl<'a> InvocationInput<'a> {
    /// An invocation with only a token (tree leaf, or chain start with an
    /// implicit zero state).
    pub fn token_only(token: u32) -> Self {
        InvocationInput {
            token: Some(token),
            states: Vec::new(),
        }
    }

    /// A chain-cell invocation: one token plus the predecessor state.
    pub fn chain(token: u32, prev: &'a CellState) -> Self {
        InvocationInput {
            token: Some(token),
            states: vec![prev],
        }
    }

    /// A tree-internal invocation combining two child states.
    pub fn tree(left: &'a CellState, right: &'a CellState) -> Self {
        InvocationInput {
            token: None,
            states: vec![left, right],
        }
    }
}

/// One invocation's outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutput {
    /// The produced recurrent state.
    pub state: CellState,
    /// The produced token (decoder cells only).
    pub token: Option<u32>,
}

impl CellOutput {
    /// An output carrying only a state.
    pub fn state_only(state: CellState) -> Self {
        CellOutput { state, token: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_state_shape() {
        let s = CellState::zeros(4);
        assert_eq!(s.width(), 4);
        assert_eq!(s.c.len(), 4);
        assert!(s.h.iter().chain(s.c.iter()).all(|&v| v == 0.0));
    }

    #[test]
    fn invocation_constructors() {
        let s = CellState::zeros(2);
        let t = InvocationInput::token_only(7);
        assert_eq!(t.token, Some(7));
        assert!(t.states.is_empty());

        let c = InvocationInput::chain(3, &s);
        assert_eq!(c.states.len(), 1);

        let s2 = CellState::zeros(2);
        let tr = InvocationInput::tree(&s, &s2);
        assert_eq!(tr.token, None);
        assert_eq!(tr.states.len(), 2);
    }
}
