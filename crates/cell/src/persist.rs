//! Shared helpers for cell weight persistence (§4.2: "BatchMaker loads
//! each cell's definition and its pre-trained weights from files").

use bm_tensor::io::WeightBundle;
use bm_tensor::Matrix;

/// Fetches a required matrix from a bundle.
pub(crate) fn expect<'a>(b: &'a WeightBundle, name: &str) -> Result<&'a Matrix, String> {
    b.get(name)
        .ok_or_else(|| format!("missing weight {name:?}"))
}

/// Validates a loaded matrix's shape.
pub(crate) fn expect_shape(m: &Matrix, shape: (usize, usize), name: &str) -> Result<(), String> {
    if m.shape() != shape {
        return Err(format!(
            "weight {name:?} has shape {:?}, expected {shape:?}",
            m.shape()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expect_reports_missing() {
        let b = WeightBundle::new();
        assert!(expect(&b, "w").unwrap_err().contains("missing"));
    }

    #[test]
    fn expect_shape_reports_mismatch() {
        let m = Matrix::zeros(2, 3);
        assert!(expect_shape(&m, (2, 3), "w").is_ok());
        let err = expect_shape(&m, (3, 2), "w").unwrap_err();
        assert!(err.contains("(2, 3)") && err.contains("(3, 2)"));
    }
}
