//! RNN cell IR, cell types and the batched cell executor.
//!
//! The central abstraction of the paper is the **cell**: "a (sub-)dataflow
//! graph \[used\] as a basic computation unit for expressing the recurrent
//! structure of an RNN" (§3.1). Cells of the same *type* — identical
//! subgraph, shared weights, identically-shaped inputs — can be batched
//! together whenever there is no data dependency between them.
//!
//! This crate provides:
//!
//! - concrete cell implementations: [`LstmCell`], [`GruCell`],
//!   [`EncoderCell`], [`DecoderCell`], [`TreeLeafCell`],
//!   [`TreeInternalCell`], all expressed over `bm-tensor` kernels;
//! - the type-erased [`Cell`] enum with [`Cell::execute_batch`], the
//!   batched executor used by workers (rows from many requests are
//!   gathered into one contiguous batch, the cell runs once, and results
//!   scatter back per request — exactly the memory behaviour §4.3
//!   describes);
//! - [`CellSignature`]/[`CellTypeId`] identity ("BatchMaker identifies
//!   the type of each cell by its definition, weights, and input tensor
//!   shapes", §4.2) and the [`CellRegistry`] that materializes cells at
//!   startup;
//! - analytic FLOP accounting ([`cost`]) used to calibrate the simulated
//!   device in `bm-device`.

pub mod cost;
mod gru;
mod lstm;
mod persist;
mod registry;
mod seq2seq;
mod signature;
mod state;
mod tree;

pub use gru::GruCell;
pub use lstm::LstmCell;
pub use registry::{CellMeta, CellRegistry};
pub use seq2seq::{DecoderCell, EncoderCell};
pub use signature::{CellSignature, CellTypeId};
pub use state::{CellOutput, CellState, InvocationInput, RowInvocation, StateRef};
pub use tree::{TreeInternalCell, TreeLeafCell};

pub use bm_tensor::Scratch;

use bm_tensor::Matrix;

/// A type-erased RNN cell.
///
/// Each variant is one cell *kind*; two cells of the same kind are still
/// different *types* if their weights differ (see [`CellSignature`]).
#[derive(Debug, Clone)]
pub enum Cell {
    /// Plain LSTM step over an embedded token.
    Lstm(LstmCell),
    /// GRU step over an embedded token (extension beyond the paper).
    Gru(GruCell),
    /// Seq2Seq encoder step (embedding + LSTM).
    Encoder(EncoderCell),
    /// Seq2Seq decoder step (embedding + LSTM + vocab projection + argmax).
    Decoder(DecoderCell),
    /// TreeLSTM leaf cell (embedding + input transform).
    TreeLeaf(TreeLeafCell),
    /// TreeLSTM internal (binary) cell combining two children.
    TreeInternal(TreeInternalCell),
}

impl Cell {
    /// Human-readable kind name.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Cell::Lstm(_) => "lstm",
            Cell::Gru(_) => "gru",
            Cell::Encoder(_) => "encoder",
            Cell::Decoder(_) => "decoder",
            Cell::TreeLeaf(_) => "tree_leaf",
            Cell::TreeInternal(_) => "tree_internal",
        }
    }

    /// Hidden state width produced by the cell.
    pub fn hidden_size(&self) -> usize {
        match self {
            Cell::Lstm(c) => c.hidden_size(),
            Cell::Gru(c) => c.hidden_size(),
            Cell::Encoder(c) => c.hidden_size(),
            Cell::Decoder(c) => c.hidden_size(),
            Cell::TreeLeaf(c) => c.hidden_size(),
            Cell::TreeInternal(c) => c.hidden_size(),
        }
    }

    /// Number of recurrent state inputs an invocation of this cell takes.
    pub fn state_arity(&self) -> usize {
        match self {
            Cell::Lstm(_) | Cell::Gru(_) | Cell::Encoder(_) | Cell::Decoder(_) => 1,
            Cell::TreeLeaf(_) => 0,
            Cell::TreeInternal(_) => 2,
        }
    }

    /// Whether invocations of this cell consume a token input.
    pub fn takes_token(&self) -> bool {
        !matches!(self, Cell::TreeInternal(_))
    }

    /// Whether invocations of this cell emit a token output (decoder).
    pub fn emits_token(&self) -> bool {
        matches!(self, Cell::Decoder(_))
    }

    /// Width of the memory-cell (`c`) row this cell produces: 0 for
    /// cells whose state has no memory component (GRU), the hidden
    /// width otherwise. Used by the runtime to size state-arena slots.
    pub fn memory_width(&self) -> usize {
        match self {
            Cell::Gru(_) => 0,
            _ => self.hidden_size(),
        }
    }

    /// Executes the cell once over a batch of invocations.
    ///
    /// The executor gathers per-invocation rows into contiguous matrices,
    /// runs the cell's dataflow once at batch size `inputs.len()`, and
    /// scatters the rows of the result back into per-invocation outputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or any invocation does not match the
    /// cell's arity (wrong number of states, missing token).
    pub fn execute_batch(&self, inputs: &[InvocationInput<'_>]) -> Vec<CellOutput> {
        self.execute_batch_in(inputs, &mut Scratch::new())
    }

    /// Scratch-arena variant of [`Cell::execute_batch`] used by runtime
    /// workers: batch intermediates are recycled through `scratch`
    /// instead of allocated per step, so steady-state serving does no
    /// per-step heap traffic. Results are bitwise identical to
    /// [`Cell::execute_batch`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or any invocation does not match the
    /// cell's arity (wrong number of states, missing token).
    pub fn execute_batch_in(
        &self,
        inputs: &[InvocationInput<'_>],
        scratch: &mut Scratch,
    ) -> Vec<CellOutput> {
        assert!(!inputs.is_empty(), "execute_batch on empty batch");
        match self {
            Cell::Lstm(c) => c.execute_batch_in(inputs, scratch),
            Cell::Gru(c) => c.execute_batch_in(inputs, scratch),
            Cell::Encoder(c) => c.execute_batch_in(inputs, scratch),
            Cell::Decoder(c) => c.execute_batch_in(inputs, scratch),
            Cell::TreeLeaf(c) => c.execute_batch_in(inputs, scratch),
            Cell::TreeInternal(c) => c.execute_batch_in(inputs, scratch),
        }
    }

    /// Zero-copy executor used by the runtime's state-arena data plane.
    ///
    /// Gathers borrowed state rows ([`RowInvocation`]) straight into the
    /// batch matrices, runs the cell once, and hands each result row to
    /// `emit(row_index, h, c, token)` while it still lives in scratch —
    /// the caller scatters rows wherever they belong (e.g. arena slots)
    /// with no intermediate [`CellOutput`] allocation. Rows are emitted
    /// in batch order; `c` is empty for cells without a memory cell and
    /// `token` is `Some` only for token-emitting cells. Numerically
    /// bit-identical to [`Cell::execute_batch`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or any invocation does not match the
    /// cell's arity (wrong number of states, missing token).
    pub fn execute_rows_in<F>(&self, inputs: &[RowInvocation<'_>], scratch: &mut Scratch, emit: F)
    where
        F: FnMut(usize, &[f32], &[f32], Option<u32>),
    {
        assert!(!inputs.is_empty(), "execute_batch on empty batch");
        match self {
            Cell::Lstm(c) => c.execute_rows_in(inputs, scratch, emit),
            Cell::Gru(c) => c.execute_rows_in(inputs, scratch, emit),
            Cell::Encoder(c) => c.execute_rows_in(inputs, scratch, emit),
            Cell::Decoder(c) => c.execute_rows_in(inputs, scratch, emit),
            Cell::TreeLeaf(c) => c.execute_rows_in(inputs, scratch, emit),
            Cell::TreeInternal(c) => c.execute_rows_in(inputs, scratch, emit),
        }
    }

    /// Analytic floating-point operation count for one execution at
    /// batch size `batch`.
    pub fn flops(&self, batch: usize) -> u64 {
        match self {
            Cell::Lstm(c) => cost::lstm_flops(batch, c.embed_size(), c.hidden_size()),
            Cell::Gru(c) => cost::gru_flops(batch, c.embed_size(), c.hidden_size()),
            Cell::Encoder(c) => cost::lstm_flops(batch, c.embed_size(), c.hidden_size()),
            Cell::Decoder(c) => {
                cost::lstm_flops(batch, c.embed_size(), c.hidden_size())
                    + cost::projection_flops(batch, c.hidden_size(), c.vocab_size())
            }
            Cell::TreeLeaf(c) => cost::tree_leaf_flops(batch, c.embed_size(), c.hidden_size()),
            Cell::TreeInternal(c) => cost::tree_internal_flops(batch, c.hidden_size()),
        }
    }

    /// Exports the cell's weights as a named bundle (§4.2 persistence).
    pub fn to_bundle(&self) -> bm_tensor::io::WeightBundle {
        match self {
            Cell::Lstm(c) => c.to_bundle(),
            Cell::Gru(c) => c.to_bundle(),
            Cell::Encoder(c) => c.to_bundle(),
            Cell::Decoder(c) => c.to_bundle(),
            Cell::TreeLeaf(c) => c.to_bundle(),
            Cell::TreeInternal(c) => c.to_bundle(),
        }
    }

    /// Reconstructs a cell of the given kind from saved weights.
    ///
    /// `kind` is a [`Cell::kind_name`] value.
    pub fn from_bundle(kind: &str, bundle: &bm_tensor::io::WeightBundle) -> Result<Self, String> {
        Ok(match kind {
            "lstm" => Cell::Lstm(LstmCell::from_bundle(bundle)?),
            "gru" => Cell::Gru(GruCell::from_bundle(bundle)?),
            "encoder" => Cell::Encoder(EncoderCell::from_bundle(bundle)?),
            "decoder" => Cell::Decoder(DecoderCell::from_bundle(bundle)?),
            "tree_leaf" => Cell::TreeLeaf(TreeLeafCell::from_bundle(bundle)?),
            "tree_internal" => Cell::TreeInternal(TreeInternalCell::from_bundle(bundle)?),
            other => return Err(format!("unknown cell kind {other:?}")),
        })
    }

    /// The cell's identity signature (kind, shapes, weight fingerprint).
    pub fn signature(&self) -> CellSignature {
        let (shapes, fp): (Vec<(usize, usize)>, u64) = match self {
            Cell::Lstm(c) => (c.input_shapes(), c.weight_fingerprint()),
            Cell::Gru(c) => (c.input_shapes(), c.weight_fingerprint()),
            Cell::Encoder(c) => (c.input_shapes(), c.weight_fingerprint()),
            Cell::Decoder(c) => (c.input_shapes(), c.weight_fingerprint()),
            Cell::TreeLeaf(c) => (c.input_shapes(), c.weight_fingerprint()),
            Cell::TreeInternal(c) => (c.input_shapes(), c.weight_fingerprint()),
        };
        CellSignature::new(self.kind_name(), shapes, fp)
    }
}

/// FNV-1a fingerprint of a set of weight matrices.
///
/// Used to build [`CellSignature`]s: two cells share a type only if their
/// weights are bit-identical.
pub(crate) fn fingerprint_weights(mats: &[&Matrix]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for m in mats {
        for d in [m.rows() as u64, m.cols() as u64] {
            for b in d.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        for v in m.as_slice() {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_distinguishes_values_and_shapes() {
        let a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        let c = Matrix::filled(4, 1, 1.0);
        let fa = fingerprint_weights(&[&a]);
        assert_eq!(fa, fingerprint_weights(&[&a.clone()]));
        assert_ne!(fa, fingerprint_weights(&[&b]));
        assert_ne!(fa, fingerprint_weights(&[&c]));
    }

    #[test]
    fn cell_arity_and_token_flags() {
        let lstm = Cell::Lstm(LstmCell::seeded(8, 16, 100, 1));
        assert_eq!(lstm.state_arity(), 1);
        assert!(lstm.takes_token());
        assert!(!lstm.emits_token());

        let leaf = Cell::TreeLeaf(TreeLeafCell::seeded(8, 16, 100, 2));
        assert_eq!(leaf.state_arity(), 0);

        let internal = Cell::TreeInternal(TreeInternalCell::seeded(16, 3));
        assert_eq!(internal.state_arity(), 2);
        assert!(!internal.takes_token());

        let dec = Cell::Decoder(DecoderCell::seeded(8, 16, 100, 4));
        assert!(dec.emits_token());
    }
}
