//! RNN cell IR, cell types and the batched cell executor.
//!
//! The central abstraction of the paper is the **cell**: "a (sub-)dataflow
//! graph \[used\] as a basic computation unit for expressing the recurrent
//! structure of an RNN" (§3.1). Cells of the same *type* — identical
//! subgraph, shared weights, identically-shaped inputs — can be batched
//! together whenever there is no data dependency between them.
//!
//! This crate provides:
//!
//! - concrete cell implementations: [`LstmCell`], [`GruCell`],
//!   [`EncoderCell`], [`DecoderCell`], [`TreeLeafCell`],
//!   [`TreeInternalCell`], all expressed over `bm-tensor` kernels;
//! - the type-erased [`Cell`] enum with two batched execution paths:
//!   the §4.3 gather path ([`Cell::execute_batch`] /
//!   [`Cell::execute_rows_in`] — rows from many requests are copied
//!   into one contiguous batch, the cell runs once, and results scatter
//!   back per request) and the resident-state path
//!   ([`Cell::step_resident`] — chain cells keep each request's state
//!   parked in a row of a persistent batch matrix described by
//!   [`ResidentLayout`], so the steady-state step moves no state and
//!   only the scatter remains); tree cells support only the gather
//!   path;
//! - [`CellSignature`]/[`CellTypeId`] identity ("BatchMaker identifies
//!   the type of each cell by its definition, weights, and input tensor
//!   shapes", §4.2) and the [`CellRegistry`] that materializes cells at
//!   startup;
//! - analytic FLOP accounting ([`cost`]) used to calibrate the simulated
//!   device in `bm-device`.

pub mod cost;
mod gru;
mod lstm;
mod persist;
mod registry;
mod seq2seq;
mod signature;
mod state;
mod tree;

pub use gru::GruCell;
pub use lstm::LstmCell;
pub use registry::{CellMeta, CellRegistry};
pub use seq2seq::{DecoderCell, EncoderCell};
pub use signature::{CellSignature, CellTypeId};
pub use state::{CellOutput, CellState, InvocationInput, ResidentLayout, RowInvocation, StateRef};
pub use tree::{TreeInternalCell, TreeLeafCell};

pub use bm_tensor::Scratch;

use bm_tensor::Matrix;

/// A type-erased RNN cell.
///
/// Each variant is one cell *kind*; two cells of the same kind are still
/// different *types* if their weights differ (see [`CellSignature`]).
#[derive(Debug, Clone)]
pub enum Cell {
    /// Plain LSTM step over an embedded token.
    Lstm(LstmCell),
    /// GRU step over an embedded token (extension beyond the paper).
    Gru(GruCell),
    /// Seq2Seq encoder step (embedding + LSTM).
    Encoder(EncoderCell),
    /// Seq2Seq decoder step (embedding + LSTM + vocab projection + argmax).
    Decoder(DecoderCell),
    /// TreeLSTM leaf cell (embedding + input transform).
    TreeLeaf(TreeLeafCell),
    /// TreeLSTM internal (binary) cell combining two children.
    TreeInternal(TreeInternalCell),
}

impl Cell {
    /// Human-readable kind name.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Cell::Lstm(_) => "lstm",
            Cell::Gru(_) => "gru",
            Cell::Encoder(_) => "encoder",
            Cell::Decoder(_) => "decoder",
            Cell::TreeLeaf(_) => "tree_leaf",
            Cell::TreeInternal(_) => "tree_internal",
        }
    }

    /// Hidden state width produced by the cell.
    pub fn hidden_size(&self) -> usize {
        match self {
            Cell::Lstm(c) => c.hidden_size(),
            Cell::Gru(c) => c.hidden_size(),
            Cell::Encoder(c) => c.hidden_size(),
            Cell::Decoder(c) => c.hidden_size(),
            Cell::TreeLeaf(c) => c.hidden_size(),
            Cell::TreeInternal(c) => c.hidden_size(),
        }
    }

    /// Number of recurrent state inputs an invocation of this cell takes.
    pub fn state_arity(&self) -> usize {
        match self {
            Cell::Lstm(_) | Cell::Gru(_) | Cell::Encoder(_) | Cell::Decoder(_) => 1,
            Cell::TreeLeaf(_) => 0,
            Cell::TreeInternal(_) => 2,
        }
    }

    /// Whether invocations of this cell consume a token input.
    pub fn takes_token(&self) -> bool {
        !matches!(self, Cell::TreeInternal(_))
    }

    /// Whether invocations of this cell emit a token output (decoder).
    pub fn emits_token(&self) -> bool {
        matches!(self, Cell::Decoder(_))
    }

    /// Width of the memory-cell (`c`) row this cell produces: 0 for
    /// cells whose state has no memory component (GRU), the hidden
    /// width otherwise. Used by the runtime to size state-arena slots.
    pub fn memory_width(&self) -> usize {
        match self {
            Cell::Gru(_) => 0,
            _ => self.hidden_size(),
        }
    }

    /// Executes the cell once over a batch of invocations.
    ///
    /// The executor gathers per-invocation rows into contiguous matrices,
    /// runs the cell's dataflow once at batch size `inputs.len()`, and
    /// scatters the rows of the result back into per-invocation outputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or any invocation does not match the
    /// cell's arity (wrong number of states, missing token).
    pub fn execute_batch(&self, inputs: &[InvocationInput<'_>]) -> Vec<CellOutput> {
        self.execute_batch_in(inputs, &mut Scratch::new())
    }

    /// Scratch-arena variant of [`Cell::execute_batch`] used by runtime
    /// workers: batch intermediates are recycled through `scratch`
    /// instead of allocated per step, so steady-state serving does no
    /// per-step heap traffic. Results are bitwise identical to
    /// [`Cell::execute_batch`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or any invocation does not match the
    /// cell's arity (wrong number of states, missing token).
    pub fn execute_batch_in(
        &self,
        inputs: &[InvocationInput<'_>],
        scratch: &mut Scratch,
    ) -> Vec<CellOutput> {
        assert!(!inputs.is_empty(), "execute_batch on empty batch");
        match self {
            Cell::Lstm(c) => c.execute_batch_in(inputs, scratch),
            Cell::Gru(c) => c.execute_batch_in(inputs, scratch),
            Cell::Encoder(c) => c.execute_batch_in(inputs, scratch),
            Cell::Decoder(c) => c.execute_batch_in(inputs, scratch),
            Cell::TreeLeaf(c) => c.execute_batch_in(inputs, scratch),
            Cell::TreeInternal(c) => c.execute_batch_in(inputs, scratch),
        }
    }

    /// Zero-copy executor used by the runtime's state-arena data plane.
    ///
    /// Gathers borrowed state rows ([`RowInvocation`]) straight into the
    /// batch matrices, runs the cell once, and hands each result row to
    /// `emit(row_index, h, c, token)` while it still lives in scratch —
    /// the caller scatters rows wherever they belong (e.g. arena slots)
    /// with no intermediate [`CellOutput`] allocation. Rows are emitted
    /// in batch order; `c` is empty for cells without a memory cell and
    /// `token` is `Some` only for token-emitting cells. Numerically
    /// bit-identical to [`Cell::execute_batch`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or any invocation does not match the
    /// cell's arity (wrong number of states, missing token).
    pub fn execute_rows_in<F>(&self, inputs: &[RowInvocation<'_>], scratch: &mut Scratch, emit: F)
    where
        F: FnMut(usize, &[f32], &[f32], Option<u32>),
    {
        assert!(!inputs.is_empty(), "execute_batch on empty batch");
        match self {
            Cell::Lstm(c) => c.execute_rows_in(inputs, scratch, emit),
            Cell::Gru(c) => c.execute_rows_in(inputs, scratch, emit),
            Cell::Encoder(c) => c.execute_rows_in(inputs, scratch, emit),
            Cell::Decoder(c) => c.execute_rows_in(inputs, scratch, emit),
            Cell::TreeLeaf(c) => c.execute_rows_in(inputs, scratch, emit),
            Cell::TreeInternal(c) => c.execute_rows_in(inputs, scratch, emit),
        }
    }

    /// The resident-state row layout for this cell, or `None` when the
    /// cell does not support the resident plane (tree cells: their
    /// batch composition is graph-shaped, not chain-shaped, so rows
    /// cannot stay parked between steps).
    pub fn resident_layout(&self) -> Option<ResidentLayout> {
        match self {
            Cell::Lstm(c) => Some(c.resident_layout()),
            Cell::Gru(c) => Some(c.resident_layout()),
            Cell::Encoder(c) => Some(c.resident_layout()),
            Cell::Decoder(c) => Some(c.resident_layout()),
            Cell::TreeLeaf(_) | Cell::TreeInternal(_) => None,
        }
    }

    /// Resident-state executor: one fused step over rows `0..rows` of a
    /// persistent batch laid out per [`Cell::resident_layout`], updating
    /// the state rows in place and emitting `(row, h, c, token)` per row
    /// in batch order — the same emit contract, and bitwise the same
    /// outputs, as [`Cell::execute_rows_in`] over equal state rows.
    ///
    /// The caller (the runtime's `ResidentBatch`) owns row placement:
    /// it must have arranged each batch entry's state at the matching
    /// row index before calling, and `tokens[r]` carries row `r`'s
    /// resolved input token.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is 0, the cell has no resident layout, or a
    /// token is missing.
    pub fn step_resident<F>(
        &self,
        xh: &mut Matrix,
        aux: &mut Matrix,
        rows: usize,
        tokens: &[Option<u32>],
        scratch: &mut Scratch,
        emit: F,
    ) where
        F: FnMut(usize, &[f32], &[f32], Option<u32>),
    {
        assert!(rows > 0, "step_resident on empty batch");
        match self {
            Cell::Lstm(c) => c.step_resident(xh, aux, rows, tokens, scratch, emit),
            Cell::Gru(c) => c.step_resident(xh, aux, rows, tokens, scratch, emit),
            Cell::Encoder(c) => c.step_resident(xh, aux, rows, tokens, scratch, emit),
            Cell::Decoder(c) => c.step_resident(xh, aux, rows, tokens, scratch, emit),
            Cell::TreeLeaf(_) | Cell::TreeInternal(_) => {
                panic!("step_resident on a cell without a resident layout")
            }
        }
    }

    /// Analytic floating-point operation count for one execution at
    /// batch size `batch`.
    pub fn flops(&self, batch: usize) -> u64 {
        match self {
            Cell::Lstm(c) => cost::lstm_flops(batch, c.embed_size(), c.hidden_size()),
            Cell::Gru(c) => cost::gru_flops(batch, c.embed_size(), c.hidden_size()),
            Cell::Encoder(c) => cost::lstm_flops(batch, c.embed_size(), c.hidden_size()),
            Cell::Decoder(c) => {
                cost::lstm_flops(batch, c.embed_size(), c.hidden_size())
                    + cost::projection_flops(batch, c.hidden_size(), c.vocab_size())
            }
            Cell::TreeLeaf(c) => cost::tree_leaf_flops(batch, c.embed_size(), c.hidden_size()),
            Cell::TreeInternal(c) => cost::tree_internal_flops(batch, c.hidden_size()),
        }
    }

    /// Exports the cell's weights as a named bundle (§4.2 persistence).
    pub fn to_bundle(&self) -> bm_tensor::io::WeightBundle {
        match self {
            Cell::Lstm(c) => c.to_bundle(),
            Cell::Gru(c) => c.to_bundle(),
            Cell::Encoder(c) => c.to_bundle(),
            Cell::Decoder(c) => c.to_bundle(),
            Cell::TreeLeaf(c) => c.to_bundle(),
            Cell::TreeInternal(c) => c.to_bundle(),
        }
    }

    /// Reconstructs a cell of the given kind from saved weights.
    ///
    /// `kind` is a [`Cell::kind_name`] value.
    pub fn from_bundle(kind: &str, bundle: &bm_tensor::io::WeightBundle) -> Result<Self, String> {
        Ok(match kind {
            "lstm" => Cell::Lstm(LstmCell::from_bundle(bundle)?),
            "gru" => Cell::Gru(GruCell::from_bundle(bundle)?),
            "encoder" => Cell::Encoder(EncoderCell::from_bundle(bundle)?),
            "decoder" => Cell::Decoder(DecoderCell::from_bundle(bundle)?),
            "tree_leaf" => Cell::TreeLeaf(TreeLeafCell::from_bundle(bundle)?),
            "tree_internal" => Cell::TreeInternal(TreeInternalCell::from_bundle(bundle)?),
            other => return Err(format!("unknown cell kind {other:?}")),
        })
    }

    /// The cell's identity signature (kind, shapes, weight fingerprint).
    pub fn signature(&self) -> CellSignature {
        let (shapes, fp): (Vec<(usize, usize)>, u64) = match self {
            Cell::Lstm(c) => (c.input_shapes(), c.weight_fingerprint()),
            Cell::Gru(c) => (c.input_shapes(), c.weight_fingerprint()),
            Cell::Encoder(c) => (c.input_shapes(), c.weight_fingerprint()),
            Cell::Decoder(c) => (c.input_shapes(), c.weight_fingerprint()),
            Cell::TreeLeaf(c) => (c.input_shapes(), c.weight_fingerprint()),
            Cell::TreeInternal(c) => (c.input_shapes(), c.weight_fingerprint()),
        };
        CellSignature::new(self.kind_name(), shapes, fp)
    }
}

/// FNV-1a fingerprint of a set of weight matrices.
///
/// Used to build [`CellSignature`]s: two cells share a type only if their
/// weights are bit-identical.
pub(crate) fn fingerprint_weights(mats: &[&Matrix]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for m in mats {
        for d in [m.rows() as u64, m.cols() as u64] {
            for b in d.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        for v in m.as_slice() {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_distinguishes_values_and_shapes() {
        let a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        let c = Matrix::filled(4, 1, 1.0);
        let fa = fingerprint_weights(&[&a]);
        assert_eq!(fa, fingerprint_weights(&[&a.clone()]));
        assert_ne!(fa, fingerprint_weights(&[&b]));
        assert_ne!(fa, fingerprint_weights(&[&c]));
    }

    /// Runs the same chain batch through the gather path and the
    /// resident path and asserts bitwise-equal outputs.
    fn assert_resident_matches_gather(cell: &Cell, steps: &[(u32, Option<CellState>)]) {
        let layout = cell.resident_layout().expect("chain cell");
        let invs: Vec<InvocationInput<'_>> = steps
            .iter()
            .map(|(t, st)| match st {
                Some(s) => InvocationInput::chain(*t, s),
                None => InvocationInput::token_only(*t),
            })
            .collect();
        let want = cell.execute_batch(&invs);

        let batch = steps.len();
        let mut xh = Matrix::zeros(batch, layout.xh_width());
        let mut aux = Matrix::zeros(batch, layout.aux_width);
        for (r, (_, st)) in steps.iter().enumerate() {
            if let Some(s) = st {
                if layout.h_in_xh {
                    xh.row_mut(r)[layout.x_width..].copy_from_slice(&s.h);
                    aux.row_mut(r).copy_from_slice(&s.c);
                } else {
                    aux.row_mut(r).copy_from_slice(&s.h);
                }
            }
        }
        let tokens: Vec<Option<u32>> = steps.iter().map(|(t, _)| Some(*t)).collect();
        let mut got: Vec<CellOutput> = Vec::new();
        cell.step_resident(
            &mut xh,
            &mut aux,
            batch,
            &tokens,
            &mut Scratch::new(),
            |row, h, c, token| {
                assert_eq!(row, got.len());
                got.push(CellOutput {
                    state: CellState {
                        h: h.to_vec(),
                        c: c.to_vec(),
                    },
                    token,
                });
            },
        );
        assert_eq!(want, got, "resident path diverged for {}", cell.kind_name());
    }

    #[test]
    fn resident_step_is_bit_identical_to_gather_step() {
        let cells = [
            Cell::Lstm(LstmCell::seeded(4, 6, 20, 42)),
            Cell::Gru(GruCell::seeded(4, 5, 12, 77)),
            Cell::Encoder(EncoderCell::seeded(4, 6, 15, 5)),
            Cell::Decoder(DecoderCell::seeded(4, 6, 25, 13)),
        ];
        for cell in &cells {
            // Build distinct non-zero states by stepping once.
            let mk_state = |tok: u32| {
                cell.execute_batch(&[InvocationInput::token_only(tok)])
                    .into_iter()
                    .next()
                    .unwrap()
                    .state
            };
            let (s1, s2) = (mk_state(1), mk_state(3));
            // Mixed batch: chain start (implicit zero state) + two live
            // chains.
            assert_resident_matches_gather(cell, &[(2, None), (7, Some(s1)), (0, Some(s2))]);
        }
    }

    #[test]
    fn resident_fallback_without_token_proj_is_bit_identical() {
        // Cells whose vocabulary is too large to cache the token
        // projection step through the full `[x|h]` resident layout;
        // that fallback must agree with the gather path (and with the
        // proj path, since both match the same oracle).
        let mut lstm = LstmCell::seeded(4, 6, 20, 42);
        lstm.drop_token_proj_for_tests();
        let mut enc = EncoderCell::seeded(4, 6, 15, 5);
        enc.drop_token_proj_for_tests();
        let mut dec = DecoderCell::seeded(4, 6, 25, 13);
        dec.drop_token_proj_for_tests();
        for cell in [Cell::Lstm(lstm), Cell::Encoder(enc), Cell::Decoder(dec)] {
            assert_eq!(
                cell.resident_layout().expect("chain cell").x_width,
                4,
                "fallback keeps x columns"
            );
            let mk_state = |tok: u32| {
                cell.execute_batch(&[InvocationInput::token_only(tok)])
                    .into_iter()
                    .next()
                    .unwrap()
                    .state
            };
            let (s1, s2) = (mk_state(1), mk_state(3));
            assert_resident_matches_gather(&cell, &[(2, None), (7, Some(s1)), (0, Some(s2))]);
        }
    }

    #[test]
    fn tree_cells_have_no_resident_layout() {
        let leaf = Cell::TreeLeaf(TreeLeafCell::seeded(8, 16, 100, 2));
        let internal = Cell::TreeInternal(TreeInternalCell::seeded(16, 3));
        assert!(leaf.resident_layout().is_none());
        assert!(internal.resident_layout().is_none());
    }

    #[test]
    fn cell_arity_and_token_flags() {
        let lstm = Cell::Lstm(LstmCell::seeded(8, 16, 100, 1));
        assert_eq!(lstm.state_arity(), 1);
        assert!(lstm.takes_token());
        assert!(!lstm.emits_token());

        let leaf = Cell::TreeLeaf(TreeLeafCell::seeded(8, 16, 100, 2));
        assert_eq!(leaf.state_arity(), 0);

        let internal = Cell::TreeInternal(TreeInternalCell::seeded(16, 3));
        assert_eq!(internal.state_arity(), 2);
        assert!(!internal.takes_token());

        let dec = Cell::Decoder(DecoderCell::seeded(8, 16, 100, 4));
        assert!(dec.emits_token());
    }
}
