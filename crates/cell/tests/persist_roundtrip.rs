//! Every cell kind round-trips through its weight bundle with identical
//! identity (signature) and identical batched outputs.

use bm_cell::{
    Cell, DecoderCell, EncoderCell, GruCell, InvocationInput, LstmCell, TreeInternalCell,
    TreeLeafCell,
};

fn cells() -> Vec<Cell> {
    vec![
        Cell::Lstm(LstmCell::seeded(6, 8, 24, 11)),
        Cell::Gru(GruCell::seeded(6, 8, 24, 12)),
        Cell::Encoder(EncoderCell::seeded(6, 8, 24, 13)),
        Cell::Decoder(DecoderCell::seeded(6, 8, 24, 14)),
        Cell::TreeLeaf(TreeLeafCell::seeded(6, 8, 24, 15)),
        Cell::TreeInternal(TreeInternalCell::seeded(8, 16)),
    ]
}

fn sample_invocations(cell: &Cell) -> Vec<bm_cell::CellOutput> {
    match cell.state_arity() {
        2 => {
            let z = bm_cell::CellState::zeros(cell.hidden_size());
            cell.execute_batch(&[InvocationInput::tree(&z, &z), InvocationInput::tree(&z, &z)])
        }
        _ => cell.execute_batch(&[
            InvocationInput::token_only(1),
            InvocationInput::token_only(7),
        ]),
    }
}

#[test]
fn all_kinds_round_trip() {
    for cell in cells() {
        let bundle = cell.to_bundle();
        let restored = Cell::from_bundle(cell.kind_name(), &bundle).expect("round trip succeeds");
        assert_eq!(
            cell.signature(),
            restored.signature(),
            "{} signature changed",
            cell.kind_name()
        );
        assert_eq!(
            sample_invocations(&cell),
            sample_invocations(&restored),
            "{} outputs changed",
            cell.kind_name()
        );
    }
}

#[test]
fn bundle_serialization_round_trip() {
    for cell in cells() {
        let mut buf = Vec::new();
        cell.to_bundle().write_to(&mut buf).unwrap();
        let bundle = bm_tensor::io::WeightBundle::read_from(&mut buf.as_slice()).unwrap();
        let restored = Cell::from_bundle(cell.kind_name(), &bundle).unwrap();
        assert_eq!(cell.signature(), restored.signature());
    }
}

#[test]
fn unknown_kind_rejected() {
    let bundle = cells()[0].to_bundle();
    assert!(Cell::from_bundle("transformer", &bundle).is_err());
}

#[test]
fn wrong_kind_bundle_rejected() {
    // A GRU bundle cannot reconstruct an LSTM (missing fused gate
    // weights).
    let gru_bundle = cells()[1].to_bundle();
    assert!(Cell::from_bundle("lstm", &gru_bundle).is_err());
}
