//! Property-based tests for batched cell execution.
//!
//! The load-bearing invariant of the whole system is *batching
//! transparency*: executing a set of invocations as one batch must give
//! exactly the same per-invocation outputs as executing them one at a
//! time (or as any partition into sub-batches). Cellular batching's
//! correctness rests on this.

use bm_cell::{
    Cell, CellState, DecoderCell, EncoderCell, GruCell, InvocationInput, LstmCell,
    TreeInternalCell, TreeLeafCell,
};
use proptest::prelude::*;

const VOCAB: usize = 24;

fn cells() -> Vec<Cell> {
    vec![
        Cell::Lstm(LstmCell::seeded(6, 8, VOCAB, 11)),
        Cell::Gru(GruCell::seeded(6, 8, VOCAB, 12)),
        Cell::Encoder(EncoderCell::seeded(6, 8, VOCAB, 13)),
        Cell::Decoder(DecoderCell::seeded(6, 8, VOCAB, 14)),
        Cell::TreeLeaf(TreeLeafCell::seeded(6, 8, VOCAB, 15)),
        Cell::TreeInternal(TreeInternalCell::seeded(8, 16)),
    ]
}

/// Builds a valid invocation for `cell` from a token and a pool of states.
fn invocation<'a>(
    cell: &Cell,
    token: u32,
    pool: &'a [CellState],
    pick: usize,
) -> InvocationInput<'a> {
    let n = pool.len();
    match cell.state_arity() {
        0 => InvocationInput::token_only(token),
        1 => InvocationInput::chain(token, &pool[pick % n]),
        2 => InvocationInput::tree(&pool[pick % n], &pool[(pick + 1) % n]),
        _ => unreachable!(),
    }
}

/// A pool of plausible recurrent states produced by actually running the
/// cell (so GRU states have empty `c`, LSTM states a populated one).
fn state_pool(cell: &Cell) -> Vec<CellState> {
    match cell.state_arity() {
        0 => vec![CellState::zeros(cell.hidden_size())],
        _ => {
            // Bootstrap: leaf-like invocation through a compatible path.
            let seedless = match cell {
                Cell::TreeInternal(_) => {
                    let z = CellState::zeros(cell.hidden_size());
                    let out = cell.execute_batch(&[InvocationInput::tree(&z, &z)]);
                    out.into_iter().map(|o| o.state).collect::<Vec<_>>()
                }
                _ => cell
                    .execute_batch(&[
                        InvocationInput::token_only(1),
                        InvocationInput::token_only(2),
                        InvocationInput::token_only(3),
                    ])
                    .into_iter()
                    .map(|o| o.state)
                    .collect::<Vec<_>>(),
            };
            seedless
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batched_execution_is_transparent(
        tokens in proptest::collection::vec(0u32..VOCAB as u32, 1..12),
        picks in proptest::collection::vec(0usize..8, 12),
        cell_idx in 0usize..6,
    ) {
        let cell = &cells()[cell_idx];
        let pool = state_pool(cell);
        let invs: Vec<InvocationInput<'_>> = tokens
            .iter()
            .enumerate()
            .map(|(i, &t)| invocation(cell, t, &pool, picks[i % picks.len()]))
            .collect();

        // One big batch.
        let batched = cell.execute_batch(&invs);

        // One at a time.
        let sequential: Vec<_> = invs
            .iter()
            .flat_map(|inv| cell.execute_batch(std::slice::from_ref(inv)))
            .collect();

        prop_assert_eq!(&batched, &sequential);

        // An arbitrary split into two sub-batches.
        if invs.len() >= 2 {
            let mid = invs.len() / 2;
            let mut split = cell.execute_batch(&invs[..mid]);
            split.extend(cell.execute_batch(&invs[mid..]));
            prop_assert_eq!(&batched, &split);
        }
    }

    #[test]
    fn scratch_reuse_is_transparent(
        tokens in proptest::collection::vec(0u32..VOCAB as u32, 1..10),
        picks in proptest::collection::vec(0usize..8, 10),
        cell_idx in 0usize..6,
    ) {
        // A worker reuses one Scratch arena across many steps; recycled
        // buffers must never leak state between steps or change a bit.
        let cell = &cells()[cell_idx];
        let pool = state_pool(cell);
        let invs: Vec<InvocationInput<'_>> = tokens
            .iter()
            .enumerate()
            .map(|(i, &t)| invocation(cell, t, &pool, picks[i % picks.len()]))
            .collect();
        let fresh: Vec<_> = invs
            .iter()
            .map(|inv| cell.execute_batch(std::slice::from_ref(inv)))
            .collect();
        let mut scratch = bm_cell::Scratch::new();
        for _ in 0..2 {
            let reused: Vec<_> = invs
                .iter()
                .map(|inv| cell.execute_batch_in(std::slice::from_ref(inv), &mut scratch))
                .collect();
            prop_assert_eq!(&fresh, &reused);
        }
        let batched = cell.execute_batch_in(&invs, &mut scratch);
        prop_assert_eq!(cell.execute_batch(&invs), batched);
    }

    #[test]
    fn outputs_are_finite(
        tokens in proptest::collection::vec(0u32..VOCAB as u32, 1..8),
        cell_idx in 0usize..6,
    ) {
        let cell = &cells()[cell_idx];
        let pool = state_pool(cell);
        let invs: Vec<InvocationInput<'_>> = tokens
            .iter()
            .map(|&t| invocation(cell, t, &pool, t as usize))
            .collect();
        for out in cell.execute_batch(&invs) {
            prop_assert!(out.state.h.iter().all(|v| v.is_finite()));
            prop_assert!(out.state.c.iter().all(|v| v.is_finite()));
            if let Some(tok) = out.token {
                prop_assert!((tok as usize) < VOCAB);
            }
        }
    }

    #[test]
    fn flops_monotone_and_positive(batch in 1usize..64, cell_idx in 0usize..6) {
        let cell = &cells()[cell_idx];
        prop_assert!(cell.flops(batch) > 0);
        prop_assert!(cell.flops(batch + 1) > cell.flops(batch));
    }
}
