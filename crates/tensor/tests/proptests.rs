//! Property-based tests for the tensor substrate.
//!
//! The bitwise-identity properties here are the contract the packed GEMM,
//! fused affine and in-place activations must uphold: every optimized
//! path produces exactly the bits of the serial reference fold
//! ([`Matrix::matmul_serial`]), not just approximately-equal values.

use bm_tensor::{ops, ComputePool, Matrix};
use proptest::prelude::*;

/// Strategy producing an arbitrary matrix with shape in `[1, max]^2` and
/// small finite values.
fn matrix(max: usize) -> impl Strategy<Value = Matrix> {
    (1..=max, 1..=max).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// A pair of matrices with compatible inner dimensions for matmul.
fn matmul_pair(max: usize) -> impl Strategy<Value = (Matrix, Matrix)> {
    (1..=max, 1..=max, 1..=max).prop_flat_map(|(m, k, n)| {
        let a = proptest::collection::vec(-4.0f32..4.0, m * k)
            .prop_map(move |d| Matrix::from_vec(m, k, d));
        let b = proptest::collection::vec(-4.0f32..4.0, k * n)
            .prop_map(move |d| Matrix::from_vec(k, n, d));
        (a, b)
    })
}

/// Like [`matmul_pair`] but with dimensions that deliberately straddle
/// the GEMM block sizes (`MR = 4`, `NR = 8`): rows = 1, exact multiples,
/// one-off-a-multiple, and ragged tails all get generated.
fn blocky_matmul_pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    fn dim() -> impl Strategy<Value = usize> {
        prop_oneof![
            Just(1usize),
            Just(3),
            Just(4),
            Just(5),
            Just(7),
            Just(8),
            Just(9),
            Just(16),
            Just(17),
            1usize..=33,
        ]
    }
    (dim(), dim(), dim()).prop_flat_map(|(m, k, n)| {
        let a = proptest::collection::vec(-4.0f32..4.0, m * k)
            .prop_map(move |d| Matrix::from_vec(m, k, d));
        let b = proptest::collection::vec(-4.0f32..4.0, k * n)
            .prop_map(move |d| Matrix::from_vec(k, n, d));
        (a, b)
    })
}

proptest! {
    #[test]
    fn matmul_identity_left_and_right((a, _) in matmul_pair(8)) {
        let il = Matrix::eye(a.rows());
        let ir = Matrix::eye(a.cols());
        prop_assert!(il.matmul(&a).approx_eq(&a, 1e-4));
        prop_assert!(a.matmul(&ir).approx_eq(&a, 1e-4));
    }

    #[test]
    fn matmul_matches_naive((a, b) in matmul_pair(8)) {
        let fast = a.matmul(&b);
        let mut naive = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0f64;
                for k in 0..a.cols() {
                    s += a.get(i, k) as f64 * b.get(k, j) as f64;
                }
                naive.set(i, j, s as f32);
            }
        }
        prop_assert!(fast.approx_eq(&naive, 1e-3));
    }

    #[test]
    fn transpose_involution(a in matrix(10)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_distributes_over_matmul((a, b) in matmul_pair(6)) {
        // (AB)^T == B^T A^T
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn add_commutes(a in matrix(8), seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let b = Matrix::from_vec(
            a.rows(), a.cols(),
            (0..a.len()).map(|_| rng.gen_range(-10.0..10.0)).collect(),
        );
        prop_assert!(ops::add(&a, &b).approx_eq(&ops::add(&b, &a), 1e-6));
    }

    #[test]
    fn gather_scatter_is_identity_on_permutations(a in matrix(8)) {
        // A permutation gather followed by the inverse scatter restores `a`.
        let n = a.rows();
        let mut perm: Vec<usize> = (0..n).collect();
        perm.reverse();
        let g = ops::gather_rows(&a, &perm);
        let mut restored = Matrix::zeros(n, a.cols());
        ops::scatter_rows(&mut restored, &g, &perm);
        prop_assert_eq!(restored, a);
    }

    #[test]
    fn split_concat_round_trip(a in matrix(6), n in 1usize..4) {
        // Widen `a` so its width is divisible by n.
        let wide = ops::concat_cols(&vec![&a; n]);
        let parts = ops::split_cols(&wide, n);
        let refs: Vec<&Matrix> = parts.iter().collect();
        prop_assert_eq!(ops::concat_cols(&refs), wide);
    }

    #[test]
    fn softmax_is_a_distribution(a in matrix(8)) {
        let s = ops::softmax(&a);
        for r in 0..s.rows() {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn argmax_agrees_with_softmax_argmax(a in matrix(8)) {
        prop_assert_eq!(ops::argmax(&a), ops::argmax(&ops::softmax(&a)));
    }

    #[test]
    fn sigmoid_bounded_and_monotone(a in matrix(8)) {
        let s = ops::sigmoid(&a);
        prop_assert!(s.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Monotonicity: sigmoid(x + 1) >= sigmoid(x).
        let shifted = ops::sigmoid(&ops::map(&a, |v| v + 1.0));
        for (x, y) in s.as_slice().iter().zip(shifted.as_slice()) {
            prop_assert!(y >= x);
        }
    }

    #[test]
    fn packed_gemm_is_bitwise_identical_to_serial_reference((a, b) in blocky_matmul_pair()) {
        // `matmul` runs the packed/blocked kernels; `matmul_serial` is
        // the naive i-k-j reference fold. `==` on Matrix is exact.
        prop_assert_eq!(a.matmul(&b), a.matmul_serial(&b));
    }

    #[test]
    fn fused_affine_is_bitwise_identical_to_matmul_plus_bias((a, b) in blocky_matmul_pair(), bias_seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(bias_seed);
        let bias = Matrix::from_vec(
            1, b.cols(),
            (0..b.cols()).map(|_| rng.gen_range(-2.0..2.0)).collect(),
        );
        let fused = ops::affine(&a, &b, &bias);
        let mut unfused = a.matmul_serial(&b);
        for r in 0..unfused.rows() {
            for (o, &bv) in unfused.row_mut(r).iter_mut().zip(bias.row(0)) {
                *o += bv;
            }
        }
        prop_assert_eq!(fused, unfused);
    }

    #[test]
    fn pool_size_does_not_change_a_single_bit((a, b) in blocky_matmul_pair()) {
        // Chunked execution under any pool size must equal the 1-thread
        // (purely serial) pool exactly, run-to-run and thread-to-thread.
        let packed = bm_tensor::PackedWeights::pack(b.rows(), b.cols(), b.as_slice());
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let serial_pool = ComputePool::new(1);
        let mut reference = vec![0.0f32; m * n];
        bm_tensor::gemm::gemm_into(a.as_slice(), m, k, &packed, None, &mut reference, Some(&serial_pool));
        let pool = ComputePool::new(3);
        for _ in 0..3 {
            let mut out = vec![0.0f32; m * n];
            bm_tensor::gemm::gemm_into(a.as_slice(), m, k, &packed, None, &mut out, Some(&pool));
            prop_assert_eq!(&out, &reference);
        }
    }

    #[test]
    fn inplace_activations_are_bitwise_identical(a in matrix(8)) {
        let mut s = a.clone();
        ops::sigmoid_inplace(&mut s);
        prop_assert_eq!(s, ops::sigmoid(&a));
        let mut t = a.clone();
        ops::tanh_inplace(&mut t);
        prop_assert_eq!(t, ops::tanh(&a));
        let mut r = a.clone();
        ops::relu_inplace(&mut r);
        prop_assert_eq!(r, ops::relu(&a));
    }

    #[test]
    fn packing_cache_survives_clone_and_invalidates_on_write((a, b) in matmul_pair(8)) {
        // Warm the cache, clone, then mutate the clone: the clone must
        // recompute its packing, the original must keep the old result.
        let before = a.matmul(&b);
        let mut b2 = b.clone();
        let flipped = -b2.get(0, 0);
        b2.set(0, 0, flipped);
        let changed = a.matmul(&b2);
        prop_assert_eq!(a.matmul(&b), before);
        prop_assert_eq!(changed, a.matmul_serial(&b2));
    }

    #[test]
    fn bundle_round_trip(a in matrix(8), b in matrix(8)) {
        let mut bundle = bm_tensor::io::WeightBundle::new();
        bundle.insert("a", a);
        bundle.insert("b", b);
        let mut buf = Vec::new();
        bundle.write_to(&mut buf).unwrap();
        let back = bm_tensor::io::WeightBundle::read_from(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(bundle, back);
    }
}
