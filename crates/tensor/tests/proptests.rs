//! Property-based tests for the tensor substrate.

use bm_tensor::{ops, Matrix};
use proptest::prelude::*;

/// Strategy producing an arbitrary matrix with shape in `[1, max]^2` and
/// small finite values.
fn matrix(max: usize) -> impl Strategy<Value = Matrix> {
    (1..=max, 1..=max).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// A pair of matrices with compatible inner dimensions for matmul.
fn matmul_pair(max: usize) -> impl Strategy<Value = (Matrix, Matrix)> {
    (1..=max, 1..=max, 1..=max).prop_flat_map(|(m, k, n)| {
        let a = proptest::collection::vec(-4.0f32..4.0, m * k)
            .prop_map(move |d| Matrix::from_vec(m, k, d));
        let b = proptest::collection::vec(-4.0f32..4.0, k * n)
            .prop_map(move |d| Matrix::from_vec(k, n, d));
        (a, b)
    })
}

proptest! {
    #[test]
    fn matmul_identity_left_and_right((a, _) in matmul_pair(8)) {
        let il = Matrix::eye(a.rows());
        let ir = Matrix::eye(a.cols());
        prop_assert!(il.matmul(&a).approx_eq(&a, 1e-4));
        prop_assert!(a.matmul(&ir).approx_eq(&a, 1e-4));
    }

    #[test]
    fn matmul_matches_naive((a, b) in matmul_pair(8)) {
        let fast = a.matmul(&b);
        let mut naive = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0f64;
                for k in 0..a.cols() {
                    s += a.get(i, k) as f64 * b.get(k, j) as f64;
                }
                naive.set(i, j, s as f32);
            }
        }
        prop_assert!(fast.approx_eq(&naive, 1e-3));
    }

    #[test]
    fn transpose_involution(a in matrix(10)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_distributes_over_matmul((a, b) in matmul_pair(6)) {
        // (AB)^T == B^T A^T
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn add_commutes(a in matrix(8), seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let b = Matrix::from_vec(
            a.rows(), a.cols(),
            (0..a.len()).map(|_| rng.gen_range(-10.0..10.0)).collect(),
        );
        prop_assert!(ops::add(&a, &b).approx_eq(&ops::add(&b, &a), 1e-6));
    }

    #[test]
    fn gather_scatter_is_identity_on_permutations(a in matrix(8)) {
        // A permutation gather followed by the inverse scatter restores `a`.
        let n = a.rows();
        let mut perm: Vec<usize> = (0..n).collect();
        perm.reverse();
        let g = ops::gather_rows(&a, &perm);
        let mut restored = Matrix::zeros(n, a.cols());
        ops::scatter_rows(&mut restored, &g, &perm);
        prop_assert_eq!(restored, a);
    }

    #[test]
    fn split_concat_round_trip(a in matrix(6), n in 1usize..4) {
        // Widen `a` so its width is divisible by n.
        let wide = ops::concat_cols(&vec![&a; n]);
        let parts = ops::split_cols(&wide, n);
        let refs: Vec<&Matrix> = parts.iter().collect();
        prop_assert_eq!(ops::concat_cols(&refs), wide);
    }

    #[test]
    fn softmax_is_a_distribution(a in matrix(8)) {
        let s = ops::softmax(&a);
        for r in 0..s.rows() {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn argmax_agrees_with_softmax_argmax(a in matrix(8)) {
        prop_assert_eq!(ops::argmax(&a), ops::argmax(&ops::softmax(&a)));
    }

    #[test]
    fn sigmoid_bounded_and_monotone(a in matrix(8)) {
        let s = ops::sigmoid(&a);
        prop_assert!(s.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Monotonicity: sigmoid(x + 1) >= sigmoid(x).
        let shifted = ops::sigmoid(&ops::map(&a, |v| v + 1.0));
        for (x, y) in s.as_slice().iter().zip(shifted.as_slice()) {
            prop_assert!(y >= x);
        }
    }

    #[test]
    fn bundle_round_trip(a in matrix(8), b in matrix(8)) {
        let mut bundle = bm_tensor::io::WeightBundle::new();
        bundle.insert("a", a);
        bundle.insert("b", b);
        let mut buf = Vec::new();
        bundle.write_to(&mut buf).unwrap();
        let back = bm_tensor::io::WeightBundle::read_from(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(bundle, back);
    }
}
