//! Error types for tensor operations.

use std::fmt;

/// A shape mismatch between operands of a tensor operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Human-readable name of the operation that failed.
    pub op: &'static str,
    /// Shape of the left-hand operand as `(rows, cols)`.
    pub lhs: (usize, usize),
    /// Shape of the right-hand operand as `(rows, cols)`.
    pub rhs: (usize, usize),
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shape mismatch in {}: lhs {}x{}, rhs {}x{}",
            self.op, self.lhs.0, self.lhs.1, self.rhs.0, self.rhs.1
        )
    }
}

impl std::error::Error for ShapeError {}

/// Any error produced by this crate.
#[derive(Debug)]
pub enum TensorError {
    /// Operand shapes were incompatible.
    Shape(ShapeError),
    /// An index (row, column, or flat) was out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The exclusive bound it violated.
        bound: usize,
    },
    /// Weight (de)serialization failed.
    Io(std::io::Error),
    /// A serialized tensor file was malformed.
    Corrupt(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::Shape(e) => write!(f, "{e}"),
            TensorError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds (bound {bound})")
            }
            TensorError::Io(e) => write!(f, "io error: {e}"),
            TensorError::Corrupt(msg) => write!(f, "corrupt tensor file: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TensorError::Shape(e) => Some(e),
            TensorError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ShapeError> for TensorError {
    fn from(e: ShapeError) -> Self {
        TensorError::Shape(e)
    }
}

impl From<std::io::Error> for TensorError {
    fn from(e: std::io::Error) -> Self {
        TensorError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_error_displays_operands() {
        let e = ShapeError {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));
    }

    #[test]
    fn tensor_error_from_shape_error_preserves_source() {
        let e: TensorError = ShapeError {
            op: "add",
            lhs: (1, 1),
            rhs: (2, 2),
        }
        .into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("add"));
    }

    #[test]
    fn index_error_display() {
        let e = TensorError::IndexOutOfBounds { index: 9, bound: 4 };
        assert_eq!(e.to_string(), "index 9 out of bounds (bound 4)");
    }
}
