//! The [`Matrix`] type: a dense, row-major `f32` matrix.
//!
//! Throughout the repository the first dimension is the *batch* dimension,
//! mirroring the paper's convention that "the first dimension of each of
//! its input tensors should be the batch dimension" (§4.2).

use crate::error::ShapeError;

/// A dense row-major `f32` matrix.
///
/// `Matrix` is the only tensor type the reproduction needs: every cell
/// input/output is a `(batch, features)` matrix and weights are
/// `(in_features, out_features)` matrices.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix of zeros with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows passed to from_rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows (the batch dimension).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (the feature dimension).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as a `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// A single row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {} out of bounds ({})", r, self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A single row as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {} out of bounds ({})", r, self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Matrix multiplication `self * rhs`.
    ///
    /// Uses a cache-blocked i-k-j loop ordering, which vectorizes well and
    /// is adequate for test/runtime workloads (hidden size 1024).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`; use [`Matrix::try_matmul`]
    /// for a fallible variant.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        self.try_matmul(rhs).expect("matmul shape mismatch")
    }

    /// Fallible matrix multiplication.
    ///
    /// Returns a [`ShapeError`] if the inner dimensions disagree.
    ///
    /// Large products are parallelized across output rows with scoped
    /// threads; batching therefore saturates the available cores exactly
    /// as the paper's Figure 3 (top) CPU curve demonstrates — small
    /// batches cannot use all cores, large ones can. Results are
    /// bitwise-identical to the serial path (each output row is an
    /// independent computation).
    pub fn try_matmul(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        if self.cols != rhs.rows {
            return Err(ShapeError {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let n = rhs.cols;
        let flops = 2 * self.rows * self.cols * n;
        // Spawning scoped threads costs tens of µs; only parallelize
        // work that dwarfs it.
        const PAR_THRESHOLD_FLOPS: usize = 16_000_000;
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        let threads = cores.min(self.rows).min(16);
        if threads > 1 && flops >= PAR_THRESHOLD_FLOPS {
            let rows_per = self.rows.div_ceil(threads);
            std::thread::scope(|scope| {
                for (chunk_idx, out_chunk) in out.data.chunks_mut(rows_per * n).enumerate() {
                    let row0 = chunk_idx * rows_per;
                    let a = &self.data;
                    let b = &rhs.data;
                    scope.spawn(move || {
                        matmul_rows(a, self.cols, b, n, out_chunk, row0);
                    });
                }
            });
        } else {
            matmul_rows(&self.data, self.cols, &rhs.data, n, &mut out.data, 0);
        }
        Ok(out)
    }

    /// Serial matrix multiplication, bypassing the parallel path.
    ///
    /// Exposed for benchmarking the parallel speedup; results are
    /// identical to [`Matrix::matmul`].
    pub fn matmul_serial(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        matmul_rows(&self.data, self.cols, &rhs.data, rhs.cols, &mut out.data, 0);
        out
    }

    /// The transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise approximate equality within tolerance `tol`.
    ///
    /// Returns `false` when shapes differ.
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Consumes the matrix, returning its row-major data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }
}

/// Computes output rows `row0..row0 + out_chunk.len() / n` of `a * b`
/// into `out_chunk`, with a k-blocked i-k-j loop to keep a stripe of `b`
/// in cache.
fn matmul_rows(a: &[f32], a_cols: usize, b: &[f32], n: usize, out_chunk: &mut [f32], row0: usize) {
    const KB: usize = 64;
    let rows = out_chunk.len() / n.max(1);
    for r in 0..rows {
        let i = row0 + r;
        let a_row = &a[i * a_cols..(i + 1) * a_cols];
        let out_row = &mut out_chunk[r * n..(r + 1) * n];
        let mut k0 = 0;
        while k0 < a_cols {
            let k1 = (k0 + KB).min(a_cols);
            for (k, &av) in a_row[k0..k1].iter().enumerate() {
                let k_abs = k0 + k;
                if av == 0.0 {
                    continue;
                }
                let b_row = &b[k_abs * n..(k_abs + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += av * bv;
                }
            }
            k0 = k1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn eye_is_identity_under_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i = Matrix::eye(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_rectangular() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.0, 1.0], &[9.0, 9.0], &[2.0, 0.5]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[5.0, 2.0]]));
    }

    #[test]
    fn try_matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let err = a.try_matmul(&b).unwrap_err();
        assert_eq!(err.op, "matmul");
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn row_access() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        a.row_mut(0)[1] = 9.0;
        assert_eq!(a.get(0, 1), 9.0);
    }

    #[test]
    #[should_panic]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn parallel_path_matches_serial() {
        // Exceed the parallel threshold: 256 x 256 x 256 = 33 MFLOPs.
        let a = crate::init::xavier_uniform(256, 256, 5);
        let b = crate::init::xavier_uniform(256, 256, 6);
        assert_eq!(a.matmul(&b), a.matmul_serial(&b));
    }

    #[test]
    fn approx_eq_respects_tolerance() {
        let a = Matrix::filled(2, 2, 1.0);
        let mut b = a.clone();
        b.set(0, 0, 1.0 + 1e-6);
        assert!(a.approx_eq(&b, 1e-5));
        assert!(!a.approx_eq(&b, 1e-8));
        let c = Matrix::filled(2, 3, 1.0);
        assert!(!a.approx_eq(&c, 1.0));
    }
}
