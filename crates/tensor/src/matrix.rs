//! The [`Matrix`] type: a dense, row-major `f32` matrix.
//!
//! Throughout the repository the first dimension is the *batch* dimension,
//! mirroring the paper's convention that "the first dimension of each of
//! its input tensors should be the batch dimension" (§4.2).

use std::sync::{Arc, OnceLock};

use crate::error::ShapeError;
use crate::gemm::{self, PackedWeights};
use crate::pool::ComputePool;

/// A dense row-major `f32` matrix.
///
/// `Matrix` is the only tensor type the reproduction needs: every cell
/// input/output is a `(batch, features)` matrix and weights are
/// `(in_features, out_features)` matrices.
///
/// When a matrix is used as the right-hand side of a matmul, its packed
/// panel representation ([`PackedWeights`]) is computed once and cached —
/// weight matrices are immutable per cell type (§4.2), so in steady-state
/// serving every hot matmul reuses the cached packing. Any mutable access
/// invalidates the cache.
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
    /// Lazily-built packed representation; shape/data identity only —
    /// excluded from `PartialEq`/`Debug`, shared by `Clone`.
    packed: OnceLock<Arc<PackedWeights>>,
}

impl Clone for Matrix {
    fn clone(&self) -> Self {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.clone(),
            // The clone has identical data, so it can share the packing.
            packed: self.packed.clone(),
        }
    }
}

impl PartialEq for Matrix {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.data == other.data
    }
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Matrix")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("data", &self.data)
            .finish()
    }
}

impl Matrix {
    /// Creates a matrix of zeros with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
            packed: OnceLock::new(),
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
            packed: OnceLock::new(),
        }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix {
            rows,
            cols,
            data,
            packed: OnceLock::new(),
        }
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows passed to from_rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
            packed: OnceLock::new(),
        }
    }

    /// Number of rows (the batch dimension).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (the feature dimension).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as a `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major data.
    ///
    /// Invalidates any cached packed representation.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        self.packed = OnceLock::new();
        &mut self.data
    }

    /// A single row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {} out of bounds ({})", r, self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A single row as a mutable slice.
    ///
    /// Invalidates any cached packed representation.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {} out of bounds ({})", r, self.rows);
        self.packed = OnceLock::new();
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// Invalidates any cached packed representation.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols);
        self.packed = OnceLock::new();
        self.data[r * self.cols + c] = v;
    }

    /// The packed panel representation of this matrix as a matmul
    /// right-hand side, built on first use and cached until the matrix
    /// is mutated.
    pub fn packed(&self) -> &Arc<PackedWeights> {
        self.packed
            .get_or_init(|| Arc::new(PackedWeights::pack(self.rows, self.cols, &self.data)))
    }

    /// Matrix multiplication `self * rhs`.
    ///
    /// Runs the packed, cache-blocked GEMM ([`crate::gemm`]); `rhs`'s
    /// packing is cached across calls (see [`Matrix::packed`]).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`; use [`Matrix::try_matmul`]
    /// for a fallible variant.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        self.try_matmul(rhs).expect("matmul shape mismatch")
    }

    /// Fallible matrix multiplication.
    ///
    /// Returns a [`ShapeError`] if the inner dimensions disagree.
    ///
    /// Large products are row-chunked across the persistent global
    /// [`ComputePool`]; batching therefore saturates the available cores
    /// exactly as the paper's Figure 3 (top) CPU curve demonstrates —
    /// small batches cannot use all cores, large ones can. Results are
    /// bitwise-identical to the serial reference path in every
    /// configuration (see [`crate::gemm`] for the argument).
    pub fn try_matmul(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        if self.cols != rhs.rows {
            return Err(ShapeError {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        gemm::gemm_into(
            &self.data,
            self.rows,
            self.cols,
            rhs.packed(),
            None,
            &mut out.data,
            auto_pool(self.rows, self.cols, rhs.cols),
        );
        Ok(out)
    }

    /// Serial reference matrix multiplication: the naive i-k-j ascending
    /// fold every optimized path must match bitwise.
    ///
    /// Exposed for benchmarking and for the bitwise-identity proptests;
    /// results are identical to [`Matrix::matmul`].
    pub fn matmul_serial(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (kk, &av) in a_row.iter().enumerate() {
                let b_row = &rhs.data[kk * n..(kk + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    /// The transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise approximate equality within tolerance `tol`.
    ///
    /// Returns `false` when shapes differ.
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Consumes the matrix, returning its row-major data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }
}

/// Picks the pool for a product of the given shape: `None` (run on the
/// caller) unless the work dwarfs the pool handoff cost and the global
/// pool actually has extra threads.
pub(crate) fn auto_pool(m: usize, k: usize, n: usize) -> Option<&'static ComputePool> {
    // Pool handoff costs a channel send per worker (~1 µs), far below the
    // tens of µs the old per-call thread spawns cost, so the threshold
    // can sit much lower than before.
    const PAR_THRESHOLD_FLOPS: usize = 4_000_000;
    if 2 * m * k * n < PAR_THRESHOLD_FLOPS || m <= gemm::MR {
        return None;
    }
    let pool = ComputePool::global();
    (pool.threads() > 1).then_some(pool)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn eye_is_identity_under_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i = Matrix::eye(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_rectangular() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.0, 1.0], &[9.0, 9.0], &[2.0, 0.5]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[5.0, 2.0]]));
    }

    #[test]
    fn try_matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let err = a.try_matmul(&b).unwrap_err();
        assert_eq!(err.op, "matmul");
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn row_access() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        a.row_mut(0)[1] = 9.0;
        assert_eq!(a.get(0, 1), 9.0);
    }

    #[test]
    #[should_panic]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn parallel_path_matches_serial() {
        // Exceed the parallel threshold: 256 x 256 x 256 = 33 MFLOPs.
        let a = crate::init::xavier_uniform(256, 256, 5);
        let b = crate::init::xavier_uniform(256, 256, 6);
        assert_eq!(a.matmul(&b), a.matmul_serial(&b));
    }

    #[test]
    fn approx_eq_respects_tolerance() {
        let a = Matrix::filled(2, 2, 1.0);
        let mut b = a.clone();
        b.set(0, 0, 1.0 + 1e-6);
        assert!(a.approx_eq(&b, 1e-5));
        assert!(!a.approx_eq(&b, 1e-8));
        let c = Matrix::filled(2, 3, 1.0);
        assert!(!a.approx_eq(&c, 1.0));
    }
}
