//! Slot-indexed row arena backing the runtime's zero-copy state plane.
//!
//! [`RowArena`] stores a fixed set of variable-width `f32` rows in one
//! contiguous allocation, addressed by dense row index. The runtime
//! allocates one arena per request at unfold time (two rows per graph
//! node: hidden state and memory cell), workers *scatter* cell outputs
//! by writing their own rows and *gather* dependencies by reading other
//! rows directly into batch matrices — no per-row `Vec`, no map lookup,
//! no lock.
//!
//! # Safety contract
//!
//! The arena hands out `&[f32]` / `&mut [f32]` row views through `&self`
//! (interior mutability: the storage is a slice of [`UnsafeCell`]s, and
//! each view covers exactly one row, so views of distinct rows never
//! alias). The *caller* must guarantee the discipline the borrow checker
//! normally would:
//!
//! - a row is written at most once, by exactly one thread, before any
//!   read of it;
//! - every read of a row happens-after that write (the runtime
//!   publishes writes with a `Release` store on a per-node flag and
//!   reads them behind the matching `Acquire` load).
//!
//! Under that discipline the arena is [`Sync`]: it is a write-once
//! publication structure, not a general shared matrix.

use std::cell::UnsafeCell;

/// A write-once arena of variable-width `f32` rows in one allocation.
pub struct RowArena {
    /// Row `i` occupies `data[offsets[i] as usize..offsets[i + 1] as usize]`.
    offsets: Box<[u32]>,
    data: Box<[UnsafeCell<f32>]>,
}

// SAFETY: all access goes through `row`/`row_mut`, whose contracts
// (documented on the module) require callers to serialize access per
// row and publish writes with Release/Acquire ordering before any read.
// Rows are disjoint, so distinct-row access from distinct threads never
// aliases.
unsafe impl Sync for RowArena {}
// SAFETY: `RowArena` owns its storage; sending it moves plain `f32` data.
unsafe impl Send for RowArena {}

impl RowArena {
    /// Builds an arena with one row per entry of `widths`, zero-filled.
    ///
    /// # Panics
    ///
    /// Panics if the total element count overflows `u32` — request
    /// graphs are far below that bound.
    pub fn new(widths: &[usize]) -> Self {
        let mut offsets = Vec::with_capacity(widths.len() + 1);
        let mut total = 0u32;
        offsets.push(0);
        for &w in widths {
            total = total
                .checked_add(u32::try_from(w).expect("row width overflows u32"))
                .expect("arena size overflows u32");
            offsets.push(total);
        }
        RowArena {
            offsets: offsets.into_boxed_slice(),
            data: (0..total).map(|_| UnsafeCell::new(0.0)).collect(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Width of row `i`.
    pub fn width(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Total `f32` elements across all rows.
    pub fn elements(&self) -> usize {
        *self.offsets.last().expect("offsets non-empty") as usize
    }

    fn cells(&self, i: usize) -> &[UnsafeCell<f32>] {
        &self.data[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Shared view of row `i`.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that the write of row `i` (if any)
    /// happened-before this call and that no `row_mut(i)` borrow is
    /// live concurrently.
    pub unsafe fn row(&self, i: usize) -> &[f32] {
        let cells = self.cells(i);
        // SAFETY: `UnsafeCell<f32>` has the layout of `f32`; the view
        // covers only this row, and the caller contract rules out a
        // concurrent writer.
        std::slice::from_raw_parts(cells.as_ptr().cast::<f32>(), cells.len())
    }

    /// Exclusive view of row `i`, through `&self`.
    ///
    /// # Safety
    ///
    /// The caller must guarantee exclusive access to row `i` for the
    /// lifetime of the returned borrow (the runtime writes each row
    /// exactly once, from the single worker that executes the node,
    /// before publishing it).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn row_mut(&self, i: usize) -> &mut [f32] {
        let cells = self.cells(i);
        // SAFETY: as above, plus exclusivity per the caller contract.
        std::slice::from_raw_parts_mut(cells.as_ptr() as *mut f32, cells.len())
    }
}

impl std::fmt::Debug for RowArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RowArena")
            .field("rows", &self.rows())
            .field("elements", &self.elements())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn rows_are_disjoint_and_zero_initialised() {
        let a = RowArena::new(&[3, 0, 2]);
        assert_eq!(a.rows(), 3);
        assert_eq!(a.elements(), 5);
        assert_eq!((a.width(0), a.width(1), a.width(2)), (3, 0, 2));
        unsafe {
            assert_eq!(a.row(0), &[0.0; 3]);
            assert!(a.row(1).is_empty());
            a.row_mut(0).copy_from_slice(&[1.0, 2.0, 3.0]);
            a.row_mut(2).copy_from_slice(&[4.0, 5.0]);
            assert_eq!(a.row(0), &[1.0, 2.0, 3.0]);
            assert_eq!(a.row(2), &[4.0, 5.0]);
        }
    }

    #[test]
    fn cross_thread_publication_round_trips() {
        let a = Arc::new(RowArena::new(&[4, 4]));
        let ready = Arc::new(AtomicBool::new(false));
        let (a2, ready2) = (Arc::clone(&a), Arc::clone(&ready));
        let writer = std::thread::spawn(move || {
            // SAFETY: this thread is the only writer of row 1, and it
            // publishes with a Release store before any reader looks.
            unsafe { a2.row_mut(1).copy_from_slice(&[9.0, 8.0, 7.0, 6.0]) };
            ready2.store(true, Ordering::Release);
        });
        while !ready.load(Ordering::Acquire) {
            std::hint::spin_loop();
        }
        // SAFETY: the Acquire load above synchronizes with the writer's
        // Release store, so the row write happened-before this read.
        unsafe { assert_eq!(a.row(1), &[9.0, 8.0, 7.0, 6.0]) };
        writer.join().expect("writer thread");
    }
}
