//! A reusable buffer pool for per-step batch matrices.
//!
//! Steady-state serving executes the same cell shapes over and over; the
//! §4.3 gather/scatter path and every batched cell step used to allocate
//! (and free) each intermediate matrix per step. A [`Scratch`] arena owned
//! by each runtime worker recycles those buffers instead: [`Scratch::take`]
//! hands out a zeroed matrix (reusing a retired allocation when one is
//! available) and [`Scratch::put`] retires a matrix's buffer for reuse.
//!
//! Buffers are recycled LIFO so the hottest allocation (the one just
//! written and read) is handed out first, which keeps the working set in
//! cache across ops within one cell step.

use crate::matrix::Matrix;

/// Maximum retired buffers kept per arena; beyond this, `put` frees.
const MAX_POOLED: usize = 16;

/// A small arena of reusable `f32` buffers backing [`Matrix`] values.
#[derive(Debug, Default)]
pub struct Scratch {
    free: Vec<Vec<f32>>,
}

impl Scratch {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Returns a zeroed `(rows, cols)` matrix, reusing a retired buffer
    /// when possible.
    ///
    /// The matrix is always fully zeroed — cell code relies on this for
    /// implicit zero initial states at chain starts.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        let mut buf = self.free.pop().unwrap_or_default();
        buf.clear();
        buf.resize(rows * cols, 0.0);
        Matrix::from_vec(rows, cols, buf)
    }

    /// Returns a `(rows, cols)` matrix with **unspecified contents**,
    /// reusing a retired buffer when possible.
    ///
    /// For buffers every element of which is about to be overwritten
    /// (GEMM outputs, gathered projections), [`take`]'s zeroing is pure
    /// waste — the resident-state step uses this variant to keep its
    /// steady-state memory traffic at zero. Callers must not read an
    /// element before writing it.
    ///
    /// [`take`]: Scratch::take
    pub fn take_dirty(&mut self, rows: usize, cols: usize) -> Matrix {
        let mut buf = self.free.pop().unwrap_or_default();
        buf.resize(rows * cols, 0.0);
        buf.truncate(rows * cols);
        Matrix::from_vec(rows, cols, buf)
    }

    /// Retires a matrix, keeping its allocation for a later [`take`].
    ///
    /// [`take`]: Scratch::take
    pub fn put(&mut self, m: Matrix) {
        if self.free.len() < MAX_POOLED {
            self.free.push(m.into_vec());
        }
    }

    /// Number of retired buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_retired_allocations() {
        let mut s = Scratch::new();
        let m = s.take(4, 8);
        let ptr = m.as_slice().as_ptr();
        s.put(m);
        assert_eq!(s.pooled(), 1);
        let m2 = s.take(2, 16);
        assert_eq!(m2.as_slice().as_ptr(), ptr);
        assert_eq!(s.pooled(), 0);
    }

    #[test]
    fn take_always_zeroes() {
        let mut s = Scratch::new();
        let mut m = s.take(2, 2);
        m.as_mut_slice().fill(7.0);
        s.put(m);
        let m2 = s.take(3, 3);
        assert!(m2.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(m2.shape(), (3, 3));
    }

    #[test]
    fn pool_is_bounded() {
        let mut s = Scratch::new();
        for _ in 0..40 {
            let m = Matrix::zeros(1, 1);
            s.put(m);
        }
        assert!(s.pooled() <= MAX_POOLED);
    }
}
