//! A persistent compute pool for data-parallel kernels.
//!
//! The original hot path spawned fresh scoped threads for every large
//! matmul; thread creation costs tens of microseconds — the very launch
//! overhead the paper's batching argument (§2.2, Figure 3) says must not
//! dominate a cell step. This pool keeps a fixed set of worker threads
//! parked on channels instead, so handing a kernel to the pool costs one
//! channel send per worker plus an atomic per chunk.
//!
//! The design is deliberately work-stealing-free: a job is a closure over
//! `chunks` independent index ranges, workers (and the calling thread,
//! which always participates) claim chunk indices from a shared atomic
//! counter until none remain. Chunk claiming is dynamic but the *result*
//! is deterministic — chunks write disjoint outputs, so scheduling order
//! cannot affect a single bit of the output (see the pool determinism
//! tests in `tests/proptests.rs`).
//!
//! One process-wide pool is shared via [`ComputePool::global`]
//! (`OnceLock`), sized to the machine; explicit [`ComputePool::new`]
//! instances exist for tests that compare 1-thread vs N-thread execution.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// One parallel job: a lifetime-erased chunk closure plus completion
/// tracking. Workers claim chunk indices from `next` until exhausted.
struct Job {
    /// Pointer to the caller's closure. Only dereferenced for claimed
    /// in-range chunks, all of which finish before [`ComputePool::run`]
    /// returns — so the pointee outlives every dereference.
    work: *const (dyn Fn(usize) + Sync),
    next: AtomicUsize,
    chunks: usize,
    /// Chunks not yet finished; guarded so the caller can sleep on `done`.
    remaining: Mutex<usize>,
    done: Condvar,
}

// SAFETY: `work` points at a `Sync` closure that the submitting thread
// keeps alive until every chunk has executed (enforced by the blocking
// wait in `ComputePool::run`); all other fields are Sync.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims and runs chunks until none remain, signalling completion.
    fn work_until_drained(&self) {
        // SAFETY: see the struct-level invariant on `work`.
        let work = unsafe { &*self.work };
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.chunks {
                return;
            }
            work(i);
            let mut rem = self.remaining.lock().expect("pool lock poisoned");
            *rem -= 1;
            if *rem == 0 {
                self.done.notify_all();
            }
        }
    }
}

/// A fixed set of persistent worker threads executing chunked jobs.
///
/// A pool of `n` threads spawns `n - 1` workers; the thread calling
/// [`ComputePool::run`] is always the `n`-th participant, so a 1-thread
/// pool is purely serial and spawns nothing.
pub struct ComputePool {
    senders: Vec<Sender<Arc<Job>>>,
    handles: Vec<JoinHandle<()>>,
}

impl ComputePool {
    /// Creates a pool with `threads` participants (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a compute pool needs at least one thread");
        let mut senders = Vec::with_capacity(threads - 1);
        let mut handles = Vec::with_capacity(threads - 1);
        for i in 0..threads - 1 {
            let (tx, rx) = channel::<Arc<Job>>();
            senders.push(tx);
            let handle = std::thread::Builder::new()
                .name(format!("bm-compute-{i}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job.work_until_drained();
                    }
                })
                .expect("spawn compute worker");
            handles.push(handle);
        }
        ComputePool { senders, handles }
    }

    /// Number of threads that participate in a job (workers + caller).
    pub fn threads(&self) -> usize {
        self.senders.len() + 1
    }

    /// The process-wide shared pool, created on first use and sized to
    /// the machine (capped at 16 threads, like the old scoped-thread
    /// path).
    pub fn global() -> &'static ComputePool {
        static POOL: OnceLock<ComputePool> = OnceLock::new();
        POOL.get_or_init(|| {
            let n = std::thread::available_parallelism()
                .map(|c| c.get())
                .unwrap_or(1)
                .min(16);
            ComputePool::new(n)
        })
    }

    /// Runs `work(0..chunks)` across the pool, blocking until every chunk
    /// has finished. Chunks must write disjoint data; under that
    /// contract results are bitwise independent of scheduling.
    pub fn run(&self, chunks: usize, work: &(dyn Fn(usize) + Sync)) {
        if chunks == 0 {
            return;
        }
        if self.senders.is_empty() || chunks == 1 {
            for i in 0..chunks {
                work(i);
            }
            return;
        }
        // SAFETY: the job (and thus the erased pointer) is only
        // dereferenced before `remaining` hits zero, and this function
        // does not return until it does — `work` outlives all uses.
        let work: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(work) };
        let job = Arc::new(Job {
            work,
            next: AtomicUsize::new(0),
            chunks,
            remaining: Mutex::new(chunks),
            done: Condvar::new(),
        });
        // Wake only as many workers as there are chunks beyond the caller.
        for tx in self.senders.iter().take(chunks - 1) {
            let _ = tx.send(Arc::clone(&job));
        }
        job.work_until_drained();
        let mut rem = job.remaining.lock().expect("pool lock poisoned");
        while *rem > 0 {
            rem = job.done.wait(rem).expect("pool lock poisoned");
        }
    }
}

impl Drop for ComputePool {
    fn drop(&mut self) {
        // Closing the channels makes workers exit their recv loops.
        self.senders.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for ComputePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComputePool")
            .field("threads", &self.threads())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn serial_pool_runs_all_chunks_inline() {
        let pool = ComputePool::new(1);
        assert_eq!(pool.threads(), 1);
        let hits = AtomicU64::new(0);
        pool.run(7, &|i| {
            hits.fetch_add(1 << i, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 0b111_1111);
    }

    #[test]
    fn parallel_pool_runs_each_chunk_exactly_once() {
        let pool = ComputePool::new(4);
        assert_eq!(pool.threads(), 4);
        let counts: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        for _ in 0..50 {
            pool.run(64, &|i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
        }
        for c in &counts {
            assert_eq!(c.load(Ordering::Relaxed), 50);
        }
    }

    #[test]
    fn zero_chunks_is_a_noop() {
        let pool = ComputePool::new(2);
        pool.run(0, &|_| panic!("no chunk should run"));
    }

    #[test]
    fn global_pool_is_shared() {
        let a = ComputePool::global() as *const ComputePool;
        let b = ComputePool::global() as *const ComputePool;
        assert_eq!(a, b);
        assert!(ComputePool::global().threads() >= 1);
    }
}
