//! Dense `f32` tensor math substrate for the BatchMaker reproduction.
//!
//! The paper's workloads (LSTM, Seq2Seq, TreeLSTM with hidden size 1024)
//! only require dense 2-D tensors whose first dimension is the batch
//! dimension, plus a handful of kernels: matrix multiplication, bias
//! addition, element-wise activations, row gather/scatter (the "gather"
//! memory copies of §4.3), concatenation, row-wise argmax/softmax, and
//! embedding lookup.
//!
//! This crate implements exactly those kernels in Rust with no external
//! BLAS, so the whole repository is self-contained. The matrix multiply
//! packs the (immutable, per-cell-type) weight operand into cache-blocked
//! panels once and runs a register-accumulating micro-kernel over them
//! ([`gemm`]), optionally chunked across a persistent [`ComputePool`];
//! results are bitwise identical to the serial reference fold in every
//! configuration. A [`Scratch`] arena lets steady-state serving recycle
//! batch buffers instead of allocating per step. The serving
//! *experiments* use the calibrated device cost model in `bm-device`
//! instead of wall-clock CPU math.
//!
//! # Examples
//!
//! ```
//! use bm_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

mod arena;
mod error;
pub mod gemm;
mod init;
pub mod io;
mod matrix;
pub mod ops;
pub mod pool;
mod scratch;

pub use arena::RowArena;
pub use error::{ShapeError, TensorError};
pub use gemm::PackedWeights;
pub use init::{xavier_uniform, zeros_like, WeightInit};
pub use matrix::Matrix;
pub use pool::ComputePool;
pub use scratch::Scratch;

/// Numerical tolerance used by tests and by [`Matrix::approx_eq`].
pub const DEFAULT_TOL: f32 = 1e-4;
