//! Packed, cache-blocked GEMM with a bitwise-stable accumulation order.
//!
//! Weight matrices are immutable per cell type (§4.2: a cell type is
//! *defined* by its weights), so the right-hand side of every hot matmul
//! can be packed once into cache-friendly column panels and reused for
//! the lifetime of the cell. Packing is cached transparently on
//! [`crate::Matrix`]; this module holds the packed representation and the
//! micro-kernels.
//!
//! # Bitwise stability
//!
//! Every output element is the ascending-`k` fold
//! `acc = (..((0 + a[i][0]*b[0][j]) + a[i][1]*b[1][j])..)` computed with
//! separate f32 multiplies and adds (Rust never contracts to FMA), with
//! an optional bias added exactly once after the fold. That is the same
//! expression tree as the naive serial reference
//! ([`crate::Matrix::matmul_serial`]), so packed, blocked and
//! pool-parallel execution all produce bit-identical results — the
//! blocking changes *which* elements are computed together, never the
//! per-element fold order. There is deliberately no k-splitting (partial
//! sums would change the fold shape).

use crate::pool::ComputePool;

/// Panel width (output columns per packed panel / micro-kernel).
///
/// With `MR = 4` row blocking the kernel keeps `MR` accumulator arrays of
/// `NR` lanes each — 8 SSE2 registers of accumulators plus the panel row
/// — which fits the baseline x86-64 register budget without spills.
pub const NR: usize = 8;

/// Row-block height of the micro-kernel.
pub const MR: usize = 4;

/// A weight matrix repacked into `NR`-wide, k-major column panels.
///
/// Panel `p` covers output columns `p*NR .. min((p+1)*NR, n)` and stores
/// `k * NR` floats (`panel[kk*NR + jj] = b[kk][p*NR + jj]`), zero-padded
/// on ragged right edges. Padded lanes are computed but never written
/// back, so the padding can't leak into results.
#[derive(Debug, Clone)]
pub struct PackedWeights {
    k: usize,
    n: usize,
    panels: Vec<f32>,
}

impl PackedWeights {
    /// Packs a row-major `(k, n)` matrix into column panels.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != k * n`.
    pub fn pack(k: usize, n: usize, b: &[f32]) -> Self {
        assert_eq!(b.len(), k * n, "pack: data does not match shape");
        let npanels = n.div_ceil(NR);
        let mut panels = vec![0.0f32; npanels * k * NR];
        for p in 0..npanels {
            let j0 = p * NR;
            let w = NR.min(n - j0);
            let panel = &mut panels[p * k * NR..(p + 1) * k * NR];
            for kk in 0..k {
                let brow = &b[kk * n + j0..kk * n + j0 + w];
                panel[kk * NR..kk * NR + w].copy_from_slice(brow);
            }
        }
        PackedWeights { k, n, panels }
    }

    /// Inner dimension (rows of the original weight matrix).
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output dimension (columns of the original weight matrix).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }
}

/// `*mut f32` that may cross threads; used to hand each pool chunk its
/// own disjoint output rows. All unsafety stays inside [`gemm_into`].
struct SendPtr(*mut f32);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// Accessor so closures capture the (Sync) wrapper, not the raw
    /// pointer field.
    #[inline]
    fn get(&self) -> *mut f32 {
        self.0
    }
}

/// Computes `out = a * packed (+ bias)` where `a` is row-major `(m, k)`.
///
/// `bias`, when present, must have length `n` and is added once per
/// output element after the full-k fold (the fused `affine`).
///
/// With a pool of more than one thread and enough rows, output rows are
/// chunked in `MR` multiples across the pool; chunks write disjoint
/// slices, so results are bitwise identical regardless of pool size.
///
/// # Panics
///
/// Panics if slice lengths disagree with `m`/`k`/`packed`.
pub fn gemm_into(
    a: &[f32],
    m: usize,
    k: usize,
    packed: &PackedWeights,
    bias: Option<&[f32]>,
    out: &mut [f32],
    pool: Option<&ComputePool>,
) {
    gemm_into_seeded(a, m, k, packed, bias, out, pool, false);
}

/// Fold continuation: computes `out = (out + a * packed) (+ bias)` with
/// the accumulator *seeded from the existing contents of `out`* instead
/// of zero.
///
/// Per output element this extends the ascending-`k` fold: if `out`
/// holds `fold(0, t_0..t_p)` (e.g. a precomputed input-projection row),
/// the result is `fold(fold(0, t_0..t_p), u_0..u_k) (+ bias)` — the
/// exact expression tree of one [`gemm_into`] over the concatenated
/// inner dimension with the bias added once at the very end. This is
/// what lets the resident-state plane split `[x|h]·W` into a cached
/// `x·Wx` row plus a live `h·Wh` continuation without changing a single
/// bit.
///
/// # Panics
///
/// Panics if slice lengths disagree with `m`/`k`/`packed`.
pub fn gemm_acc_into(
    a: &[f32],
    m: usize,
    k: usize,
    packed: &PackedWeights,
    bias: Option<&[f32]>,
    out: &mut [f32],
    pool: Option<&ComputePool>,
) {
    gemm_into_seeded(a, m, k, packed, bias, out, pool, true);
}

/// Shared body of [`gemm_into`] / [`gemm_acc_into`]; `seed` selects
/// whether accumulators start from zero or from `out`'s current values.
#[allow(clippy::too_many_arguments)]
fn gemm_into_seeded(
    a: &[f32],
    m: usize,
    k: usize,
    packed: &PackedWeights,
    bias: Option<&[f32]>,
    out: &mut [f32],
    pool: Option<&ComputePool>,
    seed: bool,
) {
    let n = packed.n;
    assert_eq!(a.len(), m * k, "gemm: lhs length mismatch");
    assert_eq!(packed.k, k, "gemm: inner dimension mismatch");
    assert_eq!(out.len(), m * n, "gemm: output length mismatch");
    if let Some(b) = bias {
        assert_eq!(b.len(), n, "gemm: bias length mismatch");
    }
    let threads = pool.map_or(1, ComputePool::threads);
    if threads > 1 && m > MR {
        let pool = pool.expect("threads > 1 implies a pool");
        let blocks = m.div_ceil(MR);
        let rows_per = blocks.div_ceil(threads.min(blocks)) * MR;
        let chunks = m.div_ceil(rows_per);
        let out_ptr = SendPtr(out.as_mut_ptr());
        pool.run(chunks, &|c| {
            let r0 = c * rows_per;
            let r1 = (r0 + rows_per).min(m);
            // SAFETY: chunks cover disjoint row ranges of `out`, and the
            // pool blocks until every chunk completes.
            let out_chunk =
                unsafe { std::slice::from_raw_parts_mut(out_ptr.get().add(r0 * n), (r1 - r0) * n) };
            gemm_block(a, k, packed, bias, out_chunk, r0, seed);
        });
    } else {
        gemm_block(a, k, packed, bias, out, 0, seed);
    }
}

/// Computes output rows `row0 ..` of the product into `out_chunk`
/// (`out_chunk.len() / n` rows), dispatching to the widest vector ISA
/// the host supports (AVX-512F, then AVX2, then baseline SSE2).
///
/// The vector clones are the *same* element-wise mul/add fold recompiled
/// with wider lanes; IEEE-754 multiplies and adds are value-identical
/// at any vector width and Rust never contracts them to FMA, so every
/// path produces bit-identical output (the proptests in
/// `tests/proptests.rs` pin this down).
#[allow(clippy::too_many_arguments)]
fn gemm_block(
    a: &[f32],
    k: usize,
    packed: &PackedWeights,
    bias: Option<&[f32]>,
    out_chunk: &mut [f32],
    row0: usize,
    seed: bool,
) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: the feature check above guarantees AVX-512F is
            // available.
            unsafe { gemm_block_avx512(a, k, packed, bias, out_chunk, row0, seed) };
            return;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the feature check above guarantees AVX2 is available.
            unsafe { gemm_block_avx2(a, k, packed, bias, out_chunk, row0, seed) };
            return;
        }
    }
    gemm_block_impl(a, k, packed, bias, out_chunk, row0, seed);
}

/// [`gemm_block_impl`] recompiled for AVX-512F. The vectorized axis is
/// the `NR`-wide accumulator arrays (output columns `jj`), never the
/// `k` fold, so lane width cannot change the per-element fold order:
/// with `NR = 8` the accumulators occupy one 256-bit lane group and the
/// win over AVX2 comes from the doubled register file (32 vector
/// registers keep all four row accumulators plus the panel row resident)
/// and EVEX encodings, not from a different expression tree.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_block_avx512(
    a: &[f32],
    k: usize,
    packed: &PackedWeights,
    bias: Option<&[f32]>,
    out_chunk: &mut [f32],
    row0: usize,
    seed: bool,
) {
    gemm_block_impl(a, k, packed, bias, out_chunk, row0, seed);
}

/// [`gemm_block_impl`] recompiled for AVX2 so the `[f32; NR]`
/// accumulator arrays lower to single 256-bit registers instead of
/// SSE2 pairs (~2x the arithmetic throughput on the hot panel loop).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_block_avx2(
    a: &[f32],
    k: usize,
    packed: &PackedWeights,
    bias: Option<&[f32]>,
    out_chunk: &mut [f32],
    row0: usize,
    seed: bool,
) {
    gemm_block_impl(a, k, packed, bias, out_chunk, row0, seed);
}

/// Portable body of the block loop; `#[inline(always)]` so each ISA
/// wrapper specialises the kernels under its own target features.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn gemm_block_impl(
    a: &[f32],
    k: usize,
    packed: &PackedWeights,
    bias: Option<&[f32]>,
    out_chunk: &mut [f32],
    row0: usize,
    seed: bool,
) {
    let n = packed.n;
    if n == 0 {
        return;
    }
    let rows = out_chunk.len() / n;
    let npanels = n.div_ceil(NR);
    let mut i0 = 0;
    while i0 < rows {
        let mr = MR.min(rows - i0);
        for p in 0..npanels {
            let j0 = p * NR;
            let w = NR.min(n - j0);
            let panel = &packed.panels[p * k * NR..(p + 1) * k * NR];
            if mr == MR {
                kernel_4xnr(a, k, panel, bias, out_chunk, row0, i0, n, j0, w, seed);
            } else {
                for ii in 0..mr {
                    kernel_1xnr(a, k, panel, bias, out_chunk, row0, i0 + ii, n, j0, w, seed);
                }
            }
        }
        i0 += mr;
    }
}

/// MR=4 micro-kernel: four rows against one panel, 4×NR accumulators
/// held in registers across the whole k loop. `#[inline(always)]` so
/// the body is specialised under each caller's target features.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn kernel_4xnr(
    a: &[f32],
    k: usize,
    panel: &[f32],
    bias: Option<&[f32]>,
    out_chunk: &mut [f32],
    row0: usize,
    i0: usize,
    n: usize,
    j0: usize,
    w: usize,
    seed: bool,
) {
    let a0 = &a[(row0 + i0) * k..(row0 + i0 + 1) * k];
    let a1 = &a[(row0 + i0 + 1) * k..(row0 + i0 + 2) * k];
    let a2 = &a[(row0 + i0 + 2) * k..(row0 + i0 + 3) * k];
    let a3 = &a[(row0 + i0 + 3) * k..(row0 + i0 + 4) * k];
    let mut acc0 = [0.0f32; NR];
    let mut acc1 = [0.0f32; NR];
    let mut acc2 = [0.0f32; NR];
    let mut acc3 = [0.0f32; NR];
    if seed {
        // Padded lanes (`w..NR`) stay zero and are never written back.
        for (ii, acc) in [&mut acc0, &mut acc1, &mut acc2, &mut acc3]
            .into_iter()
            .enumerate()
        {
            let o0 = (i0 + ii) * n + j0;
            acc[..w].copy_from_slice(&out_chunk[o0..o0 + w]);
        }
    }
    for kk in 0..k {
        let bp: &[f32; NR] = panel[kk * NR..(kk + 1) * NR].try_into().unwrap();
        let (v0, v1, v2, v3) = (a0[kk], a1[kk], a2[kk], a3[kk]);
        for jj in 0..NR {
            acc0[jj] += v0 * bp[jj];
        }
        for jj in 0..NR {
            acc1[jj] += v1 * bp[jj];
        }
        for jj in 0..NR {
            acc2[jj] += v2 * bp[jj];
        }
        for jj in 0..NR {
            acc3[jj] += v3 * bp[jj];
        }
    }
    for (ii, acc) in [acc0, acc1, acc2, acc3].iter().enumerate() {
        let o0 = (i0 + ii) * n + j0;
        let orow = &mut out_chunk[o0..o0 + w];
        match bias {
            Some(b) => {
                for jj in 0..w {
                    orow[jj] = acc[jj] + b[j0 + jj];
                }
            }
            None => orow.copy_from_slice(&acc[..w]),
        }
    }
}

/// Single-row tail kernel (rows beyond the last full MR block).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn kernel_1xnr(
    a: &[f32],
    k: usize,
    panel: &[f32],
    bias: Option<&[f32]>,
    out_chunk: &mut [f32],
    row0: usize,
    i: usize,
    n: usize,
    j0: usize,
    w: usize,
    seed: bool,
) {
    let a_row = &a[(row0 + i) * k..(row0 + i + 1) * k];
    let mut acc = [0.0f32; NR];
    if seed {
        let o0 = i * n + j0;
        acc[..w].copy_from_slice(&out_chunk[o0..o0 + w]);
    }
    for kk in 0..k {
        let bp: &[f32; NR] = panel[kk * NR..(kk + 1) * NR].try_into().unwrap();
        let v = a_row[kk];
        for jj in 0..NR {
            acc[jj] += v * bp[jj];
        }
    }
    let o0 = i * n + j0;
    let orow = &mut out_chunk[o0..o0 + w];
    match bias {
        Some(b) => {
            for jj in 0..w {
                orow[jj] = acc[jj] + b[j0 + jj];
            }
        }
        None => orow.copy_from_slice(&acc[..w]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], m: usize, k: usize, b: &[f32], n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for kk in 0..k {
                let av = a[i * k + kk];
                for j in 0..n {
                    out[i * n + j] += av * b[kk * n + j];
                }
            }
        }
        out
    }

    fn seq(len: usize, scale: f32) -> Vec<f32> {
        (0..len).map(|i| ((i % 23) as f32 - 11.0) * scale).collect()
    }

    #[test]
    fn packed_matches_naive_on_awkward_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (1, 7, 8),
            (3, 5, 9),
            (4, 8, 8),
            (5, 16, 17),
            (13, 31, 3),
            (64, 33, 40),
        ] {
            let a = seq(m * k, 0.25);
            let b = seq(k * n, 0.5);
            let packed = PackedWeights::pack(k, n, &b);
            let mut out = vec![0.0f32; m * n];
            gemm_into(&a, m, k, &packed, None, &mut out, None);
            assert_eq!(out, naive(&a, m, k, &b, n), "shape ({m},{k},{n})");
        }
    }

    #[test]
    fn bias_is_added_once_after_the_fold() {
        let (m, k, n) = (6, 10, 11);
        let a = seq(m * k, 0.1);
        let b = seq(k * n, 0.3);
        let bias = seq(n, 2.0);
        let packed = PackedWeights::pack(k, n, &b);
        let mut out = vec![0.0f32; m * n];
        gemm_into(&a, m, k, &packed, Some(&bias), &mut out, None);
        let mut want = naive(&a, m, k, &b, n);
        for i in 0..m {
            for j in 0..n {
                want[i * n + j] += bias[j];
            }
        }
        assert_eq!(out, want);
    }

    #[test]
    fn pool_chunking_is_bitwise_identical() {
        let (m, k, n) = (37, 24, 19);
        let a = seq(m * k, 0.2);
        let b = seq(k * n, 0.4);
        let packed = PackedWeights::pack(k, n, &b);
        let mut serial = vec![0.0f32; m * n];
        gemm_into(&a, m, k, &packed, None, &mut serial, None);
        let pool = ComputePool::new(4);
        for _ in 0..8 {
            let mut par = vec![0.0f32; m * n];
            gemm_into(&a, m, k, &packed, None, &mut par, Some(&pool));
            assert_eq!(par, serial);
        }
    }

    #[test]
    fn acc_fold_split_is_bitwise_identical_to_one_fold() {
        // Split the inner dimension at an arbitrary boundary `e`: a
        // zero-seeded GEMM over the first `e` terms followed by an
        // accumulator-seeded continuation over the rest (bias at the
        // end) must reproduce the single full fold bit for bit — the
        // property the resident plane's cached input projection relies
        // on.
        for &(m, e, h, n) in &[(1, 1, 1, 1), (3, 5, 7, 9), (6, 16, 16, 64), (13, 7, 31, 20)] {
            let k = e + h;
            let a = seq(m * k, 0.23);
            let b = seq(k * n, 0.41);
            let bias = seq(n, 1.7);
            let full = PackedWeights::pack(k, n, &b);
            let mut want = vec![0.0f32; m * n];
            gemm_into(&a, m, k, &full, Some(&bias), &mut want, None);

            // Deinterleave a into its x (first e cols) and h halves.
            let ax: Vec<f32> = (0..m).flat_map(|i| a[i * k..i * k + e].to_vec()).collect();
            let ah: Vec<f32> = (0..m)
                .flat_map(|i| a[i * k + e..(i + 1) * k].to_vec())
                .collect();
            let wx = PackedWeights::pack(e, n, &b[..e * n]);
            let wh = PackedWeights::pack(h, n, &b[e * n..]);
            let mut got = vec![0.0f32; m * n];
            gemm_into(&ax, m, e, &wx, None, &mut got, None);
            gemm_acc_into(&ah, m, h, &wh, Some(&bias), &mut got, None);
            assert_eq!(got, want, "split ({m},{e}+{h},{n})");
        }
    }

    #[test]
    fn acc_pool_chunking_is_bitwise_identical() {
        let (m, k, n) = (37, 24, 19);
        let a = seq(m * k, 0.2);
        let b = seq(k * n, 0.4);
        let packed = PackedWeights::pack(k, n, &b);
        let mut serial = seq(m * n, 0.05);
        let par_init = serial.clone();
        gemm_acc_into(&a, m, k, &packed, None, &mut serial, None);
        let pool = ComputePool::new(4);
        for _ in 0..8 {
            let mut par = par_init.clone();
            gemm_acc_into(&a, m, k, &packed, None, &mut par, Some(&pool));
            assert_eq!(par, serial);
        }
    }

    #[test]
    fn zero_k_with_bias_writes_bias() {
        let packed = PackedWeights::pack(0, 3, &[]);
        let bias = [1.0, 2.0, 3.0];
        let mut out = vec![9.0f32; 6];
        gemm_into(&[], 2, 0, &packed, Some(&bias), &mut out, None);
        assert_eq!(out, vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }
}
