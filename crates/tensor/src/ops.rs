//! Batched tensor kernels used by RNN cells.
//!
//! Every function here operates on `(batch, features)` matrices. These are
//! the operators a BatchMaker "cell" is composed of: affine transforms,
//! element-wise activations, row gathers (the §4.3 "gather" memory copy),
//! concatenation, softmax/argmax (the Seq2Seq output projection) and
//! embedding lookups.

use crate::error::ShapeError;
use crate::gemm;
use crate::matrix::Matrix;
use crate::pool::ComputePool;

/// The scalar sigmoid `1 / (1 + e^-v)` shared by every sigmoid path
/// (allocating, in-place and fused), so all of them agree bitwise.
#[inline]
fn sigmoid_s(v: f32) -> f32 {
    1.0 / (1.0 + (-v).exp())
}

/// Computes `x * w + b`, broadcasting the bias row over the batch.
///
/// `x` is `(batch, in)`, `w` is `(in, out)`, `b` is `(1, out)`.
///
/// # Panics
///
/// Panics on shape mismatch; use [`try_affine`] for a fallible variant.
pub fn affine(x: &Matrix, w: &Matrix, b: &Matrix) -> Matrix {
    try_affine(x, w, b).expect("affine shape mismatch")
}

/// Fallible version of [`affine`].
///
/// Fused: the bias is added inside the GEMM write-back, once per output
/// element after the full-k fold — the same expression tree as matmul
/// followed by a bias pass, so results are bitwise identical to the
/// unfused composition.
pub fn try_affine(x: &Matrix, w: &Matrix, b: &Matrix) -> Result<Matrix, ShapeError> {
    if b.rows() != 1 || b.cols() != w.cols() {
        return Err(ShapeError {
            op: "affine/bias",
            lhs: w.shape(),
            rhs: b.shape(),
        });
    }
    if x.cols() != w.rows() {
        return Err(ShapeError {
            op: "matmul",
            lhs: x.shape(),
            rhs: w.shape(),
        });
    }
    let mut out = Matrix::zeros(x.rows(), w.cols());
    affine_into(x, w, b, &mut out);
    Ok(out)
}

/// Fused affine into an existing `(batch, out)` matrix, allocating
/// nothing. `out`'s prior contents are overwritten.
///
/// # Panics
///
/// Panics on any shape mismatch.
pub fn affine_into(x: &Matrix, w: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(x.cols(), w.rows(), "affine_into inner dimension");
    assert!(
        b.rows() == 1 && b.cols() == w.cols(),
        "affine_into bias shape"
    );
    assert_eq!(
        out.shape(),
        (x.rows(), w.cols()),
        "affine_into output shape"
    );
    let (m, k) = x.shape();
    gemm::gemm_into(
        x.as_slice(),
        m,
        k,
        w.packed(),
        Some(b.row(0)),
        out.as_mut_slice(),
        crate::matrix::auto_pool(m, k, w.cols()),
    );
}

/// Fused affine over the first `rows` rows of `x` into the first `rows`
/// rows of `out`, with an explicit [`ComputePool`] choice.
///
/// This is the resident-state entry point: the resident batch matrix is
/// allocated at capacity but only its occupied prefix carries live
/// requests, so the GEMM must run over a row prefix without reshaping
/// or copying. The pool parallelizes the batch-row dimension (disjoint
/// `MR`-multiple row chunks); per-row folds are independent, so results
/// are bitwise identical to [`affine_into`] on the same rows at any
/// pool size.
///
/// # Panics
///
/// Panics on shape mismatch or if `rows` exceeds either matrix.
pub fn affine_rows_into(
    x: &Matrix,
    rows: usize,
    w: &Matrix,
    b: &Matrix,
    out: &mut Matrix,
    pool: Option<&ComputePool>,
) {
    assert!(rows <= x.rows(), "affine_rows_into: rows exceeds input");
    assert!(rows <= out.rows(), "affine_rows_into: rows exceeds output");
    assert_eq!(x.cols(), w.rows(), "affine_rows_into inner dimension");
    assert!(
        b.rows() == 1 && b.cols() == w.cols(),
        "affine_rows_into bias shape"
    );
    assert_eq!(out.cols(), w.cols(), "affine_rows_into output width");
    let k = x.cols();
    let n = w.cols();
    gemm::gemm_into(
        &x.as_slice()[..rows * k],
        rows,
        k,
        w.packed(),
        Some(b.row(0)),
        &mut out.as_mut_slice()[..rows * n],
        pool,
    );
}

/// Fold-continuation affine over the first `rows` rows: computes
/// `out = (out + x · wh) + b`, seeding each output element's
/// accumulator from `out`'s current value ([`gemm::gemm_acc_into`]).
///
/// This is the second half of the resident plane's split affine: `out`
/// rows hold the precomputed token-projection partials
/// (`fold(0, x·Wx terms)`, no bias) and `x` holds the live hidden-state
/// rows, so the result is bitwise identical to one full
/// `affine_rows_into` over the concatenated `[x|h]` input — the fold
/// continues in the same ascending-`k` order and the bias is still
/// added exactly once at the end.
///
/// # Panics
///
/// Panics on shape mismatch or if `rows` exceeds either matrix.
pub fn affine_acc_rows_into(
    x: &Matrix,
    rows: usize,
    wh: &gemm::PackedWeights,
    b: &Matrix,
    out: &mut Matrix,
    pool: Option<&ComputePool>,
) {
    assert!(rows <= x.rows(), "affine_acc_rows_into: rows exceeds input");
    assert!(
        rows <= out.rows(),
        "affine_acc_rows_into: rows exceeds output"
    );
    assert_eq!(x.cols(), wh.k(), "affine_acc_rows_into inner dimension");
    assert!(
        b.rows() == 1 && b.cols() == wh.n(),
        "affine_acc_rows_into bias shape"
    );
    assert_eq!(out.cols(), wh.n(), "affine_acc_rows_into output width");
    let k = x.cols();
    let n = wh.n();
    gemm::gemm_acc_into(
        &x.as_slice()[..rows * k],
        rows,
        k,
        wh,
        Some(b.row(0)),
        &mut out.as_mut_slice()[..rows * n],
        pool,
    );
}

/// The pool-selection heuristic used by [`Matrix::matmul`] and
/// [`affine_into`], exposed so callers driving [`affine_rows_into`] can
/// make the same choice for an `(m, k, n)` product: the global
/// [`ComputePool`] when the work amortizes the chunk handoff, `None`
/// (serial) otherwise. Pool size never affects results (bitwise).
pub fn auto_pool(m: usize, k: usize, n: usize) -> Option<&'static ComputePool> {
    crate::matrix::auto_pool(m, k, n)
}

/// Element-wise sigmoid `1 / (1 + e^-x)`.
pub fn sigmoid(x: &Matrix) -> Matrix {
    map(x, sigmoid_s)
}

/// Element-wise hyperbolic tangent.
pub fn tanh(x: &Matrix) -> Matrix {
    map(x, f32::tanh)
}

/// Element-wise rectified linear unit.
pub fn relu(x: &Matrix) -> Matrix {
    map(x, |v| v.max(0.0))
}

/// Applies `f` element-wise, producing a new matrix.
///
/// Single-pass: the output is built directly from the input, rather than
/// cloning and overwriting.
pub fn map(x: &Matrix, f: impl Fn(f32) -> f32) -> Matrix {
    let mut data = Vec::with_capacity(x.len());
    data.extend(x.as_slice().iter().map(|&v| f(v)));
    Matrix::from_vec(x.rows(), x.cols(), data)
}

/// Applies `f` element-wise in place.
pub fn map_inplace(x: &mut Matrix, f: impl Fn(f32) -> f32) {
    for v in x.as_mut_slice() {
        *v = f(*v);
    }
}

/// In-place sigmoid; bitwise identical to [`sigmoid`].
pub fn sigmoid_inplace(x: &mut Matrix) {
    map_inplace(x, sigmoid_s);
}

/// In-place hyperbolic tangent; bitwise identical to [`tanh`].
pub fn tanh_inplace(x: &mut Matrix) {
    map_inplace(x, f32::tanh);
}

/// In-place rectified linear unit; bitwise identical to [`relu`].
pub fn relu_inplace(x: &mut Matrix) {
    map_inplace(x, |v| v.max(0.0));
}

/// Element-wise addition.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn add(a: &Matrix, b: &Matrix) -> Matrix {
    zip(a, b, "add", |x, y| x + y)
}

/// Element-wise (Hadamard) product.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn mul(a: &Matrix, b: &Matrix) -> Matrix {
    zip(a, b, "mul", |x, y| x * y)
}

fn zip(a: &Matrix, b: &Matrix, op: &'static str, f: impl Fn(f32, f32) -> f32) -> Matrix {
    assert_eq!(
        a.shape(),
        b.shape(),
        "shape mismatch in {op}: {:?} vs {:?}",
        a.shape(),
        b.shape()
    );
    let mut data = Vec::with_capacity(a.len());
    data.extend(
        a.as_slice()
            .iter()
            .zip(b.as_slice().iter())
            .map(|(&x, &y)| f(x, y)),
    );
    Matrix::from_vec(a.rows(), a.cols(), data)
}

/// Concatenates matrices along the feature (column) axis.
///
/// All inputs must share the same batch size.
///
/// # Panics
///
/// Panics if the parts list is empty or batch sizes disagree.
pub fn concat_cols(parts: &[&Matrix]) -> Matrix {
    assert!(!parts.is_empty(), "concat_cols of zero matrices");
    let rows = parts[0].rows();
    let cols: usize = parts.iter().map(|p| p.cols()).sum();
    let mut out = Matrix::zeros(rows, cols);
    for r in 0..rows {
        let mut off = 0;
        let out_row = out.row_mut(r);
        for p in parts {
            assert_eq!(p.rows(), rows, "concat_cols batch mismatch");
            out_row[off..off + p.cols()].copy_from_slice(p.row(r));
            off += p.cols();
        }
    }
    out
}

/// Stacks matrices along the batch (row) axis.
///
/// All inputs must share the same feature width. This is the "gather"
/// copy performed when cells from different requests are packed into one
/// contiguous batched input (§4.3).
///
/// # Panics
///
/// Panics if the parts list is empty or widths disagree.
pub fn concat_rows(parts: &[&Matrix]) -> Matrix {
    assert!(!parts.is_empty(), "concat_rows of zero matrices");
    let cols = parts[0].cols();
    let rows: usize = parts.iter().map(|p| p.rows()).sum();
    let mut out = Matrix::zeros(rows, cols);
    let mut r = 0;
    for p in parts {
        assert_eq!(p.cols(), cols, "concat_rows width mismatch");
        for pr in 0..p.rows() {
            out.row_mut(r).copy_from_slice(p.row(pr));
            r += 1;
        }
    }
    out
}

/// Selects the listed rows into a new matrix (batched gather).
///
/// # Panics
///
/// Panics if any index is out of bounds.
pub fn gather_rows(x: &Matrix, indices: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(indices.len(), x.cols());
    gather_rows_into(x, indices, &mut out);
    out
}

/// [`gather_rows`] into an existing `(indices.len(), x.cols())` matrix,
/// allocating nothing (the scratch-arena gather of §4.3).
///
/// # Panics
///
/// Panics if shapes disagree or any index is out of bounds.
pub fn gather_rows_into(x: &Matrix, indices: &[usize], out: &mut Matrix) {
    assert_eq!(
        out.shape(),
        (indices.len(), x.cols()),
        "gather_rows_into output shape"
    );
    for (i, &idx) in indices.iter().enumerate() {
        out.row_mut(i).copy_from_slice(x.row(idx));
    }
}

/// Writes each row of `src` into `dst` at the corresponding index
/// (batched scatter, the inverse of [`gather_rows`]).
///
/// # Panics
///
/// Panics if widths differ, `src.rows() != indices.len()`, or an index is
/// out of bounds.
pub fn scatter_rows(dst: &mut Matrix, src: &Matrix, indices: &[usize]) {
    assert_eq!(src.rows(), indices.len(), "scatter_rows index count");
    assert_eq!(src.cols(), dst.cols(), "scatter_rows width mismatch");
    for (i, &idx) in indices.iter().enumerate() {
        dst.row_mut(idx).copy_from_slice(src.row(i));
    }
}

/// Splits a matrix into equal column chunks.
///
/// Used to slice the fused LSTM gate pre-activations `(batch, 4h)` into
/// the four `(batch, h)` gates.
///
/// # Panics
///
/// Panics if `x.cols()` is not divisible by `n`.
pub fn split_cols(x: &Matrix, n: usize) -> Vec<Matrix> {
    assert!(
        n > 0 && x.cols().is_multiple_of(n),
        "split_cols: {} % {n} != 0",
        x.cols()
    );
    let w = x.cols() / n;
    let mut parts = vec![Matrix::zeros(x.rows(), w); n];
    for r in 0..x.rows() {
        let row = x.row(r);
        for (k, part) in parts.iter_mut().enumerate() {
            part.row_mut(r).copy_from_slice(&row[k * w..(k + 1) * w]);
        }
    }
    parts
}

/// Row-wise softmax.
pub fn softmax(x: &Matrix) -> Matrix {
    let mut data = Vec::with_capacity(x.len());
    for r in 0..x.rows() {
        let row = x.row(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let base = data.len();
        let mut sum = 0.0;
        for &v in row {
            let e = (v - max).exp();
            sum += e;
            data.push(e);
        }
        for v in &mut data[base..] {
            *v /= sum;
        }
    }
    Matrix::from_vec(x.rows(), x.cols(), data)
}

/// Row-wise argmax: index of the largest element in each row.
///
/// Ties resolve to the lowest index, matching the CUDA argmax kernel the
/// paper implemented for all evaluated systems (§7.4, footnote 3).
pub fn argmax(x: &Matrix) -> Vec<usize> {
    (0..x.rows())
        .map(|r| {
            let row = x.row(r);
            let mut best = 0;
            let mut best_v = f32::NEG_INFINITY;
            for (i, &v) in row.iter().enumerate() {
                if v > best_v {
                    best_v = v;
                    best = i;
                }
            }
            best
        })
        .collect()
}

/// Embedding lookup: row `ids[i]` of `table` becomes output row `i`.
///
/// # Panics
///
/// Panics if any id is out of the vocabulary.
pub fn embedding(table: &Matrix, ids: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(ids.len(), table.cols());
    embedding_into(table, ids, &mut out);
    out
}

/// [`embedding`] into an existing `(ids.len(), table.cols())` matrix.
///
/// # Panics
///
/// Panics if shapes disagree or any id is out of the vocabulary.
pub fn embedding_into(table: &Matrix, ids: &[usize], out: &mut Matrix) {
    for &id in ids {
        assert!(
            id < table.rows(),
            "embedding id {id} >= vocab {}",
            table.rows()
        );
    }
    gather_rows_into(table, ids, out);
}

/// Fused LSTM gate kernel: from pre-activations `z = [i|f|g|o]`
/// (`(batch, 4h)`) and the previous cell state `c_prev` (`(batch, h)`),
/// computes the new cell and hidden states into `c_out`/`h_out` in one
/// pass with zero allocations.
///
/// Per element this evaluates exactly the composed-op expression trees
/// `c' = (sigmoid(f) * c_prev) + (sigmoid(i) * tanh(g))` and
/// `h' = sigmoid(o) * tanh(c')`, so results are bitwise identical to the
/// unfused `split_cols`/`sigmoid`/`tanh`/`mul`/`add` chain it replaces.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn lstm_gates(z: &Matrix, c_prev: &Matrix, h_out: &mut Matrix, c_out: &mut Matrix) {
    let (batch, h) = c_prev.shape();
    assert_eq!(z.shape(), (batch, 4 * h), "lstm_gates pre-activation shape");
    assert_eq!(h_out.shape(), (batch, h), "lstm_gates h_out shape");
    assert_eq!(c_out.shape(), (batch, h), "lstm_gates c_out shape");
    let hs = h_out.as_mut_slice();
    let cs = c_out.as_mut_slice();
    for r in 0..batch {
        let zr = z.row(r);
        let cp = c_prev.row(r);
        let hr = &mut hs[r * h..(r + 1) * h];
        let cr = &mut cs[r * h..(r + 1) * h];
        for j in 0..h {
            let i_g = sigmoid_s(zr[j]);
            let f_g = sigmoid_s(zr[h + j]);
            let g_g = zr[2 * h + j].tanh();
            let o_g = sigmoid_s(zr[3 * h + j]);
            let c_new = (f_g * cp[j]) + (i_g * g_g);
            cr[j] = c_new;
            hr[j] = o_g * c_new.tanh();
        }
    }
}

/// Single-row, in-place LSTM gate kernel for resident state rows: the
/// previous cell state is read from and the new one written back to
/// `c_row`, and the new hidden state overwrites `h_row` (which may be a
/// sub-slice of a wider resident `[x|h]` row).
///
/// Per element this evaluates exactly the same expression tree as
/// [`lstm_gates`] — each `c` element is read before it is overwritten —
/// so a resident step is bitwise identical to the gather-path step.
///
/// # Panics
///
/// Panics on slice-length mismatch.
pub fn lstm_gates_row_inplace(z_row: &[f32], h_row: &mut [f32], c_row: &mut [f32]) {
    let h = c_row.len();
    assert_eq!(z_row.len(), 4 * h, "lstm_gates_row pre-activation length");
    assert_eq!(h_row.len(), h, "lstm_gates_row h length");
    for j in 0..h {
        let i_g = sigmoid_s(z_row[j]);
        let f_g = sigmoid_s(z_row[h + j]);
        let g_g = z_row[2 * h + j].tanh();
        let o_g = sigmoid_s(z_row[3 * h + j]);
        let c_new = (f_g * c_row[j]) + (i_g * g_g);
        c_row[j] = c_new;
        h_row[j] = o_g * c_new.tanh();
    }
}

/// Single-row, in-place GRU combine for resident state rows:
/// `h[j] = ((1 - z[j]) * n[j]) + (z[j] * h[j])`, each element read
/// before it is overwritten — the same expression tree as
/// [`gru_combine`], so resident and gather paths agree bitwise.
///
/// # Panics
///
/// Panics on slice-length mismatch.
pub fn gru_combine_row_inplace(z_row: &[f32], n_row: &[f32], h_row: &mut [f32]) {
    assert_eq!(z_row.len(), h_row.len(), "gru_combine_row z length");
    assert_eq!(n_row.len(), h_row.len(), "gru_combine_row n length");
    for ((hv, &zv), &nv) in h_row.iter_mut().zip(z_row).zip(n_row) {
        *hv = ((1.0 - zv) * nv) + (zv * *hv);
    }
}

/// Fused GRU combine: `h' = ((1 - z) * n) + (z * h_prev)` element-wise
/// into `h_out`; bitwise identical to the unfused `map`/`mul`/`add`
/// chain.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn gru_combine(z: &Matrix, n: &Matrix, h_prev: &Matrix, h_out: &mut Matrix) {
    let shape = h_prev.shape();
    assert_eq!(z.shape(), shape, "gru_combine z shape");
    assert_eq!(n.shape(), shape, "gru_combine n shape");
    assert_eq!(h_out.shape(), shape, "gru_combine h_out shape");
    let out = h_out.as_mut_slice();
    for (((o, &zv), &nv), &hv) in out
        .iter_mut()
        .zip(z.as_slice())
        .zip(n.as_slice())
        .zip(h_prev.as_slice())
    {
        *o = ((1.0 - zv) * nv) + (zv * hv);
    }
}

/// Fused TreeLSTM leaf combine: `c = i * u`, `h = o * tanh(c)`; bitwise
/// identical to the unfused `mul`/`tanh` chain.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn tree_leaf_combine(
    i: &Matrix,
    o: &Matrix,
    u: &Matrix,
    h_out: &mut Matrix,
    c_out: &mut Matrix,
) {
    let shape = i.shape();
    assert_eq!(o.shape(), shape, "tree_leaf_combine o shape");
    assert_eq!(u.shape(), shape, "tree_leaf_combine u shape");
    assert_eq!(h_out.shape(), shape, "tree_leaf_combine h_out shape");
    assert_eq!(c_out.shape(), shape, "tree_leaf_combine c_out shape");
    let hs = h_out.as_mut_slice();
    let cs = c_out.as_mut_slice();
    for ((((hv, cv), &iv), &ov), &uv) in hs
        .iter_mut()
        .zip(cs.iter_mut())
        .zip(i.as_slice())
        .zip(o.as_slice())
        .zip(u.as_slice())
    {
        let c = iv * uv;
        *cv = c;
        *hv = ov * c.tanh();
    }
}

/// Fused TreeLSTM internal combine:
/// `c = (i * u) + ((fl * cl) + (fr * cr))`, `h = o * tanh(c)`; bitwise
/// identical to the unfused `mul`/`add`/`tanh` chain.
///
/// # Panics
///
/// Panics on shape mismatch.
#[allow(clippy::too_many_arguments)]
pub fn tree_internal_combine(
    i: &Matrix,
    fl: &Matrix,
    fr: &Matrix,
    o: &Matrix,
    u: &Matrix,
    cl: &Matrix,
    cr: &Matrix,
    h_out: &mut Matrix,
    c_out: &mut Matrix,
) {
    let shape = i.shape();
    for (m, what) in [
        (fl, "fl"),
        (fr, "fr"),
        (o, "o"),
        (u, "u"),
        (cl, "cl"),
        (cr, "cr"),
    ] {
        assert_eq!(m.shape(), shape, "tree_internal_combine {what} shape");
    }
    assert_eq!(h_out.shape(), shape, "tree_internal_combine h_out shape");
    assert_eq!(c_out.shape(), shape, "tree_internal_combine c_out shape");
    let hs = h_out.as_mut_slice();
    let cs = c_out.as_mut_slice();
    for idx in 0..hs.len() {
        let c = (i.as_slice()[idx] * u.as_slice()[idx])
            + ((fl.as_slice()[idx] * cl.as_slice()[idx])
                + (fr.as_slice()[idx] * cr.as_slice()[idx]));
        cs[idx] = c;
        hs[idx] = o.as_slice()[idx] * c.tanh();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[&[f32]]) -> Matrix {
        Matrix::from_rows(rows)
    }

    #[test]
    fn affine_broadcasts_bias() {
        let x = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let w = Matrix::eye(2);
        let b = m(&[&[10.0, 20.0]]);
        let y = affine(&x, &w, &b);
        assert_eq!(y, m(&[&[11.0, 22.0], &[13.0, 24.0]]));
    }

    #[test]
    fn try_affine_rejects_bad_bias() {
        let x = Matrix::zeros(1, 2);
        let w = Matrix::zeros(2, 3);
        let b = Matrix::zeros(1, 2);
        assert!(try_affine(&x, &w, &b).is_err());
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let x = m(&[&[0.0, 100.0, -100.0]]);
        let y = sigmoid(&x);
        assert!((y.get(0, 0) - 0.5).abs() < 1e-6);
        assert!(y.get(0, 1) > 0.999);
        assert!(y.get(0, 2) < 0.001);
    }

    #[test]
    fn tanh_is_odd() {
        let x = m(&[&[0.5, -0.5]]);
        let y = tanh(&x);
        assert!((y.get(0, 0) + y.get(0, 1)).abs() < 1e-6);
    }

    #[test]
    fn relu_clamps_negatives() {
        let y = relu(&m(&[&[-1.0, 0.0, 2.0]]));
        assert_eq!(y, m(&[&[0.0, 0.0, 2.0]]));
    }

    #[test]
    fn add_and_mul_elementwise() {
        let a = m(&[&[1.0, 2.0]]);
        let b = m(&[&[3.0, 4.0]]);
        assert_eq!(add(&a, &b), m(&[&[4.0, 6.0]]));
        assert_eq!(mul(&a, &b), m(&[&[3.0, 8.0]]));
    }

    #[test]
    #[should_panic]
    fn add_shape_mismatch_panics() {
        let _ = add(&Matrix::zeros(1, 2), &Matrix::zeros(2, 1));
    }

    #[test]
    fn concat_cols_layout() {
        let a = m(&[&[1.0], &[2.0]]);
        let b = m(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let c = concat_cols(&[&a, &b]);
        assert_eq!(c, m(&[&[1.0, 3.0, 4.0], &[2.0, 5.0, 6.0]]));
    }

    #[test]
    fn concat_rows_layout() {
        let a = m(&[&[1.0, 2.0]]);
        let b = m(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let c = concat_rows(&[&a, &b]);
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn gather_scatter_round_trip() {
        let x = m(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let g = gather_rows(&x, &[2, 0]);
        assert_eq!(g, m(&[&[3.0, 3.0], &[1.0, 1.0]]));
        let mut dst = Matrix::zeros(3, 2);
        scatter_rows(&mut dst, &g, &[2, 0]);
        assert_eq!(dst.row(0), &[1.0, 1.0]);
        assert_eq!(dst.row(2), &[3.0, 3.0]);
        assert_eq!(dst.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn split_cols_inverts_concat() {
        let a = m(&[&[1.0, 2.0], &[5.0, 6.0]]);
        let b = m(&[&[3.0, 4.0], &[7.0, 8.0]]);
        let c = concat_cols(&[&a, &b]);
        let parts = split_cols(&c, 2);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = m(&[&[1.0, 2.0, 3.0], &[0.0, 0.0, 0.0]]);
        let y = softmax(&x);
        for r in 0..2 {
            let s: f32 = y.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        // Uniform logits give uniform probabilities.
        assert!((y.get(1, 0) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = m(&[&[1.0, 2.0, 3.0]]);
        let shifted = map(&x, |v| v + 1000.0);
        assert!(softmax(&x).approx_eq(&softmax(&shifted), 1e-5));
    }

    #[test]
    fn argmax_ties_go_low() {
        let x = m(&[&[1.0, 3.0, 3.0], &[5.0, 2.0, 1.0]]);
        assert_eq!(argmax(&x), vec![1, 0]);
    }

    #[test]
    fn embedding_selects_rows() {
        let table = m(&[&[0.0, 0.0], &[1.0, 1.0], &[2.0, 2.0]]);
        let e = embedding(&table, &[2, 2, 0]);
        assert_eq!(e, m(&[&[2.0, 2.0], &[2.0, 2.0], &[0.0, 0.0]]));
    }

    #[test]
    #[should_panic]
    fn embedding_oov_panics() {
        let table = Matrix::zeros(3, 2);
        let _ = embedding(&table, &[3]);
    }

    #[test]
    fn inplace_activations_match_allocating() {
        let x = m(&[&[-2.0, -0.5, 0.0, 0.5, 2.0], &[1.0, -1.0, 3.0, -3.0, 0.1]]);
        let mut s = x.clone();
        sigmoid_inplace(&mut s);
        assert_eq!(s, sigmoid(&x));
        let mut t = x.clone();
        tanh_inplace(&mut t);
        assert_eq!(t, tanh(&x));
        let mut r = x.clone();
        relu_inplace(&mut r);
        assert_eq!(r, relu(&x));
    }

    #[test]
    fn affine_into_matches_affine() {
        let x = m(&[&[1.0, -2.0, 0.5], &[0.25, 3.0, -1.5]]);
        let w = m(&[&[1.0, 2.0], &[-0.5, 0.75], &[2.0, -1.0]]);
        let b = m(&[&[0.125, -0.25]]);
        let mut out = Matrix::zeros(2, 2);
        affine_into(&x, &w, &b, &mut out);
        assert_eq!(out, affine(&x, &w, &b));
    }

    #[test]
    fn lstm_gates_matches_composed_ops() {
        let z = m(&[&[0.3, -0.7, 1.2, 0.1, -0.4, 0.9, 2.0, -1.1]]);
        let c_prev = m(&[&[0.5, -0.25]]);
        let gates = split_cols(&z, 4);
        let (i, f, g, o) = (
            sigmoid(&gates[0]),
            sigmoid(&gates[1]),
            tanh(&gates[2]),
            sigmoid(&gates[3]),
        );
        let c_want = add(&mul(&f, &c_prev), &mul(&i, &g));
        let h_want = mul(&o, &tanh(&c_want));
        let mut h = Matrix::zeros(1, 2);
        let mut c = Matrix::zeros(1, 2);
        lstm_gates(&z, &c_prev, &mut h, &mut c);
        assert_eq!(c, c_want);
        assert_eq!(h, h_want);
    }

    #[test]
    fn row_inplace_kernels_match_batch_kernels() {
        // The resident-state step must compute exactly the bits the
        // gather-path batch kernels compute.
        let z = m(&[
            &[0.3, -0.7, 1.2, 0.1, -0.4, 0.9, 2.0, -1.1],
            &[-0.2, 0.5, -1.3, 0.8, 1.1, -0.6, 0.4, 0.7],
        ]);
        let c_prev = m(&[&[0.5, -0.25], &[-1.5, 2.0]]);
        let mut h_want = Matrix::zeros(2, 2);
        let mut c_want = Matrix::zeros(2, 2);
        lstm_gates(&z, &c_prev, &mut h_want, &mut c_want);
        for r in 0..2 {
            let mut h_row = [0.0f32; 2];
            let mut c_row: [f32; 2] = c_prev.row(r).try_into().unwrap();
            lstm_gates_row_inplace(z.row(r), &mut h_row, &mut c_row);
            assert_eq!(&h_row, h_want.row(r));
            assert_eq!(&c_row, c_want.row(r));
        }

        let zg = m(&[&[0.2, 0.8, 0.5]]);
        let n = m(&[&[1.0, -1.0, 0.25]]);
        let h_prev = m(&[&[0.5, 0.5, -2.0]]);
        let mut hg_want = Matrix::zeros(1, 3);
        gru_combine(&zg, &n, &h_prev, &mut hg_want);
        let mut h_row: [f32; 3] = h_prev.row(0).try_into().unwrap();
        gru_combine_row_inplace(zg.row(0), n.row(0), &mut h_row);
        assert_eq!(&h_row, hg_want.row(0));
    }

    #[test]
    fn affine_rows_into_matches_affine_on_prefix() {
        let x = m(&[
            &[1.0, -2.0, 0.5],
            &[0.25, 3.0, -1.5],
            &[9.0, 9.0, 9.0], // beyond the prefix: must be ignored
        ]);
        let w = m(&[&[1.0, 2.0], &[-0.5, 0.75], &[2.0, -1.0]]);
        let b = m(&[&[0.125, -0.25]]);
        let mut out = Matrix::from_vec(3, 2, vec![7.0; 6]);
        let pool = ComputePool::new(3);
        for p in [None, Some(&pool)] {
            affine_rows_into(&x, 2, &w, &b, &mut out, p);
            let full = affine(&x, &w, &b);
            assert_eq!(out.row(0), full.row(0));
            assert_eq!(out.row(1), full.row(1));
            // Rows past the prefix are untouched.
            assert_eq!(out.row(2), &[7.0, 7.0]);
        }
    }

    #[test]
    fn gru_combine_matches_composed_ops() {
        let z = m(&[&[0.2, 0.8, 0.5]]);
        let n = m(&[&[1.0, -1.0, 0.25]]);
        let h_prev = m(&[&[0.5, 0.5, -2.0]]);
        let one_minus_z = map(&z, |v| 1.0 - v);
        let want = add(&mul(&one_minus_z, &n), &mul(&z, &h_prev));
        let mut h = Matrix::zeros(1, 3);
        gru_combine(&z, &n, &h_prev, &mut h);
        assert_eq!(h, want);
    }

    #[test]
    fn tree_combines_match_composed_ops() {
        let i = m(&[&[0.2, 0.9]]);
        let o = m(&[&[0.6, 0.3]]);
        let u = m(&[&[-0.5, 1.5]]);
        let c_want = mul(&i, &u);
        let h_want = mul(&o, &tanh(&c_want));
        let mut h = Matrix::zeros(1, 2);
        let mut c = Matrix::zeros(1, 2);
        tree_leaf_combine(&i, &o, &u, &mut h, &mut c);
        assert_eq!(c, c_want);
        assert_eq!(h, h_want);

        let fl = m(&[&[0.7, 0.1]]);
        let fr = m(&[&[0.4, 0.8]]);
        let cl = m(&[&[1.0, -0.5]]);
        let cr = m(&[&[-0.25, 2.0]]);
        let c_want = add(&mul(&i, &u), &add(&mul(&fl, &cl), &mul(&fr, &cr)));
        let h_want = mul(&o, &tanh(&c_want));
        tree_internal_combine(&i, &fl, &fr, &o, &u, &cl, &cr, &mut h, &mut c);
        assert_eq!(c, c_want);
        assert_eq!(h, h_want);
    }

    #[test]
    fn gather_and_embedding_into_match_allocating() {
        let x = m(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let mut out = Matrix::zeros(2, 2);
        gather_rows_into(&x, &[2, 0], &mut out);
        assert_eq!(out, gather_rows(&x, &[2, 0]));
        let mut e = Matrix::zeros(2, 2);
        embedding_into(&x, &[1, 1], &mut e);
        assert_eq!(e, embedding(&x, &[1, 1]));
    }
}
