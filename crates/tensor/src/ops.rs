//! Batched tensor kernels used by RNN cells.
//!
//! Every function here operates on `(batch, features)` matrices. These are
//! the operators a BatchMaker "cell" is composed of: affine transforms,
//! element-wise activations, row gathers (the §4.3 "gather" memory copy),
//! concatenation, softmax/argmax (the Seq2Seq output projection) and
//! embedding lookups.

use crate::error::ShapeError;
use crate::matrix::Matrix;

/// Computes `x * w + b`, broadcasting the bias row over the batch.
///
/// `x` is `(batch, in)`, `w` is `(in, out)`, `b` is `(1, out)`.
///
/// # Panics
///
/// Panics on shape mismatch; use [`try_affine`] for a fallible variant.
pub fn affine(x: &Matrix, w: &Matrix, b: &Matrix) -> Matrix {
    try_affine(x, w, b).expect("affine shape mismatch")
}

/// Fallible version of [`affine`].
pub fn try_affine(x: &Matrix, w: &Matrix, b: &Matrix) -> Result<Matrix, ShapeError> {
    if b.rows() != 1 || b.cols() != w.cols() {
        return Err(ShapeError {
            op: "affine/bias",
            lhs: w.shape(),
            rhs: b.shape(),
        });
    }
    let mut out = x.try_matmul(w)?;
    let bias = b.row(0);
    for r in 0..out.rows() {
        for (o, &bv) in out.row_mut(r).iter_mut().zip(bias.iter()) {
            *o += bv;
        }
    }
    Ok(out)
}

/// Element-wise sigmoid `1 / (1 + e^-x)`.
pub fn sigmoid(x: &Matrix) -> Matrix {
    map(x, |v| 1.0 / (1.0 + (-v).exp()))
}

/// Element-wise hyperbolic tangent.
pub fn tanh(x: &Matrix) -> Matrix {
    map(x, f32::tanh)
}

/// Element-wise rectified linear unit.
pub fn relu(x: &Matrix) -> Matrix {
    map(x, |v| v.max(0.0))
}

/// Applies `f` element-wise, producing a new matrix.
pub fn map(x: &Matrix, f: impl Fn(f32) -> f32) -> Matrix {
    let mut out = x.clone();
    for v in out.as_mut_slice() {
        *v = f(*v);
    }
    out
}

/// Element-wise addition.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn add(a: &Matrix, b: &Matrix) -> Matrix {
    zip(a, b, "add", |x, y| x + y)
}

/// Element-wise (Hadamard) product.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn mul(a: &Matrix, b: &Matrix) -> Matrix {
    zip(a, b, "mul", |x, y| x * y)
}

fn zip(a: &Matrix, b: &Matrix, op: &'static str, f: impl Fn(f32, f32) -> f32) -> Matrix {
    assert_eq!(
        a.shape(),
        b.shape(),
        "shape mismatch in {op}: {:?} vs {:?}",
        a.shape(),
        b.shape()
    );
    let mut out = a.clone();
    for (o, &bv) in out.as_mut_slice().iter_mut().zip(b.as_slice().iter()) {
        *o = f(*o, bv);
    }
    out
}

/// Concatenates matrices along the feature (column) axis.
///
/// All inputs must share the same batch size.
///
/// # Panics
///
/// Panics if the parts list is empty or batch sizes disagree.
pub fn concat_cols(parts: &[&Matrix]) -> Matrix {
    assert!(!parts.is_empty(), "concat_cols of zero matrices");
    let rows = parts[0].rows();
    let cols: usize = parts.iter().map(|p| p.cols()).sum();
    let mut out = Matrix::zeros(rows, cols);
    for r in 0..rows {
        let mut off = 0;
        let out_row = out.row_mut(r);
        for p in parts {
            assert_eq!(p.rows(), rows, "concat_cols batch mismatch");
            out_row[off..off + p.cols()].copy_from_slice(p.row(r));
            off += p.cols();
        }
    }
    out
}

/// Stacks matrices along the batch (row) axis.
///
/// All inputs must share the same feature width. This is the "gather"
/// copy performed when cells from different requests are packed into one
/// contiguous batched input (§4.3).
///
/// # Panics
///
/// Panics if the parts list is empty or widths disagree.
pub fn concat_rows(parts: &[&Matrix]) -> Matrix {
    assert!(!parts.is_empty(), "concat_rows of zero matrices");
    let cols = parts[0].cols();
    let rows: usize = parts.iter().map(|p| p.rows()).sum();
    let mut out = Matrix::zeros(rows, cols);
    let mut r = 0;
    for p in parts {
        assert_eq!(p.cols(), cols, "concat_rows width mismatch");
        for pr in 0..p.rows() {
            out.row_mut(r).copy_from_slice(p.row(pr));
            r += 1;
        }
    }
    out
}

/// Selects the listed rows into a new matrix (batched gather).
///
/// # Panics
///
/// Panics if any index is out of bounds.
pub fn gather_rows(x: &Matrix, indices: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(indices.len(), x.cols());
    for (i, &idx) in indices.iter().enumerate() {
        out.row_mut(i).copy_from_slice(x.row(idx));
    }
    out
}

/// Writes each row of `src` into `dst` at the corresponding index
/// (batched scatter, the inverse of [`gather_rows`]).
///
/// # Panics
///
/// Panics if widths differ, `src.rows() != indices.len()`, or an index is
/// out of bounds.
pub fn scatter_rows(dst: &mut Matrix, src: &Matrix, indices: &[usize]) {
    assert_eq!(src.rows(), indices.len(), "scatter_rows index count");
    assert_eq!(src.cols(), dst.cols(), "scatter_rows width mismatch");
    for (i, &idx) in indices.iter().enumerate() {
        dst.row_mut(idx).copy_from_slice(src.row(i));
    }
}

/// Splits a matrix into equal column chunks.
///
/// Used to slice the fused LSTM gate pre-activations `(batch, 4h)` into
/// the four `(batch, h)` gates.
///
/// # Panics
///
/// Panics if `x.cols()` is not divisible by `n`.
pub fn split_cols(x: &Matrix, n: usize) -> Vec<Matrix> {
    assert!(
        n > 0 && x.cols().is_multiple_of(n),
        "split_cols: {} % {n} != 0",
        x.cols()
    );
    let w = x.cols() / n;
    let mut parts = vec![Matrix::zeros(x.rows(), w); n];
    for r in 0..x.rows() {
        let row = x.row(r);
        for (k, part) in parts.iter_mut().enumerate() {
            part.row_mut(r).copy_from_slice(&row[k * w..(k + 1) * w]);
        }
    }
    parts
}

/// Row-wise softmax.
pub fn softmax(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Row-wise argmax: index of the largest element in each row.
///
/// Ties resolve to the lowest index, matching the CUDA argmax kernel the
/// paper implemented for all evaluated systems (§7.4, footnote 3).
pub fn argmax(x: &Matrix) -> Vec<usize> {
    (0..x.rows())
        .map(|r| {
            let row = x.row(r);
            let mut best = 0;
            let mut best_v = f32::NEG_INFINITY;
            for (i, &v) in row.iter().enumerate() {
                if v > best_v {
                    best_v = v;
                    best = i;
                }
            }
            best
        })
        .collect()
}

/// Embedding lookup: row `ids[i]` of `table` becomes output row `i`.
///
/// # Panics
///
/// Panics if any id is out of the vocabulary.
pub fn embedding(table: &Matrix, ids: &[usize]) -> Matrix {
    for &id in ids {
        assert!(
            id < table.rows(),
            "embedding id {id} >= vocab {}",
            table.rows()
        );
    }
    gather_rows(table, ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[&[f32]]) -> Matrix {
        Matrix::from_rows(rows)
    }

    #[test]
    fn affine_broadcasts_bias() {
        let x = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let w = Matrix::eye(2);
        let b = m(&[&[10.0, 20.0]]);
        let y = affine(&x, &w, &b);
        assert_eq!(y, m(&[&[11.0, 22.0], &[13.0, 24.0]]));
    }

    #[test]
    fn try_affine_rejects_bad_bias() {
        let x = Matrix::zeros(1, 2);
        let w = Matrix::zeros(2, 3);
        let b = Matrix::zeros(1, 2);
        assert!(try_affine(&x, &w, &b).is_err());
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let x = m(&[&[0.0, 100.0, -100.0]]);
        let y = sigmoid(&x);
        assert!((y.get(0, 0) - 0.5).abs() < 1e-6);
        assert!(y.get(0, 1) > 0.999);
        assert!(y.get(0, 2) < 0.001);
    }

    #[test]
    fn tanh_is_odd() {
        let x = m(&[&[0.5, -0.5]]);
        let y = tanh(&x);
        assert!((y.get(0, 0) + y.get(0, 1)).abs() < 1e-6);
    }

    #[test]
    fn relu_clamps_negatives() {
        let y = relu(&m(&[&[-1.0, 0.0, 2.0]]));
        assert_eq!(y, m(&[&[0.0, 0.0, 2.0]]));
    }

    #[test]
    fn add_and_mul_elementwise() {
        let a = m(&[&[1.0, 2.0]]);
        let b = m(&[&[3.0, 4.0]]);
        assert_eq!(add(&a, &b), m(&[&[4.0, 6.0]]));
        assert_eq!(mul(&a, &b), m(&[&[3.0, 8.0]]));
    }

    #[test]
    #[should_panic]
    fn add_shape_mismatch_panics() {
        let _ = add(&Matrix::zeros(1, 2), &Matrix::zeros(2, 1));
    }

    #[test]
    fn concat_cols_layout() {
        let a = m(&[&[1.0], &[2.0]]);
        let b = m(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let c = concat_cols(&[&a, &b]);
        assert_eq!(c, m(&[&[1.0, 3.0, 4.0], &[2.0, 5.0, 6.0]]));
    }

    #[test]
    fn concat_rows_layout() {
        let a = m(&[&[1.0, 2.0]]);
        let b = m(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let c = concat_rows(&[&a, &b]);
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn gather_scatter_round_trip() {
        let x = m(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let g = gather_rows(&x, &[2, 0]);
        assert_eq!(g, m(&[&[3.0, 3.0], &[1.0, 1.0]]));
        let mut dst = Matrix::zeros(3, 2);
        scatter_rows(&mut dst, &g, &[2, 0]);
        assert_eq!(dst.row(0), &[1.0, 1.0]);
        assert_eq!(dst.row(2), &[3.0, 3.0]);
        assert_eq!(dst.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn split_cols_inverts_concat() {
        let a = m(&[&[1.0, 2.0], &[5.0, 6.0]]);
        let b = m(&[&[3.0, 4.0], &[7.0, 8.0]]);
        let c = concat_cols(&[&a, &b]);
        let parts = split_cols(&c, 2);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = m(&[&[1.0, 2.0, 3.0], &[0.0, 0.0, 0.0]]);
        let y = softmax(&x);
        for r in 0..2 {
            let s: f32 = y.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        // Uniform logits give uniform probabilities.
        assert!((y.get(1, 0) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = m(&[&[1.0, 2.0, 3.0]]);
        let shifted = map(&x, |v| v + 1000.0);
        assert!(softmax(&x).approx_eq(&softmax(&shifted), 1e-5));
    }

    #[test]
    fn argmax_ties_go_low() {
        let x = m(&[&[1.0, 3.0, 3.0], &[5.0, 2.0, 1.0]]);
        assert_eq!(argmax(&x), vec![1, 0]);
    }

    #[test]
    fn embedding_selects_rows() {
        let table = m(&[&[0.0, 0.0], &[1.0, 1.0], &[2.0, 2.0]]);
        let e = embedding(&table, &[2, 2, 0]);
        assert_eq!(e, m(&[&[2.0, 2.0], &[2.0, 2.0], &[0.0, 0.0]]));
    }

    #[test]
    #[should_panic]
    fn embedding_oov_panics() {
        let table = Matrix::zeros(3, 2);
        let _ = embedding(&table, &[3]);
    }
}
