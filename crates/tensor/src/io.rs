//! A tiny explicit binary codec for saving/loading weight matrices.
//!
//! BatchMaker "loads each cell's definition and its pre-trained weights
//! from files" at startup (§4.2). This module provides that persistence:
//! a named bundle of matrices written as
//!
//! ```text
//! magic "BMT1" | u32 count | count * ( u32 name_len | name bytes |
//!                                       u32 rows | u32 cols | f32 data.. )
//! ```
//!
//! All integers are little-endian. The format is versioned via the magic.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::Path;

use crate::error::TensorError;
use crate::matrix::Matrix;

const MAGIC: &[u8; 4] = b"BMT1";

/// A named, ordered bundle of matrices (e.g. all weights of a cell).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WeightBundle {
    entries: BTreeMap<String, Matrix>,
}

impl WeightBundle {
    /// Creates an empty bundle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) a matrix under `name`.
    pub fn insert(&mut self, name: impl Into<String>, m: Matrix) {
        self.entries.insert(name.into(), m);
    }

    /// Looks up a matrix by name.
    pub fn get(&self, name: &str) -> Option<&Matrix> {
        self.entries.get(name)
    }

    /// Number of matrices in the bundle.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the bundle is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(name, matrix)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Matrix)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Serializes the bundle to a writer.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), TensorError> {
        w.write_all(MAGIC)?;
        w.write_all(&(self.entries.len() as u32).to_le_bytes())?;
        for (name, m) in &self.entries {
            w.write_all(&(name.len() as u32).to_le_bytes())?;
            w.write_all(name.as_bytes())?;
            w.write_all(&(m.rows() as u32).to_le_bytes())?;
            w.write_all(&(m.cols() as u32).to_le_bytes())?;
            for v in m.as_slice() {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Deserializes a bundle from a reader.
    pub fn read_from(r: &mut impl Read) -> Result<Self, TensorError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(TensorError::Corrupt(format!("bad magic {magic:?}")));
        }
        let count = read_u32(r)? as usize;
        let mut entries = BTreeMap::new();
        for _ in 0..count {
            let name_len = read_u32(r)? as usize;
            if name_len > 1 << 20 {
                return Err(TensorError::Corrupt(format!("name length {name_len}")));
            }
            let mut name_buf = vec![0u8; name_len];
            r.read_exact(&mut name_buf)?;
            let name = String::from_utf8(name_buf)
                .map_err(|e| TensorError::Corrupt(format!("name not utf-8: {e}")))?;
            let rows = read_u32(r)? as usize;
            let cols = read_u32(r)? as usize;
            let n = rows
                .checked_mul(cols)
                .ok_or_else(|| TensorError::Corrupt("shape overflow".into()))?;
            let mut data = Vec::with_capacity(n);
            let mut buf = [0u8; 4];
            for _ in 0..n {
                r.read_exact(&mut buf)?;
                data.push(f32::from_le_bytes(buf));
            }
            entries.insert(name, Matrix::from_vec(rows, cols, data));
        }
        Ok(WeightBundle { entries })
    }

    /// Merges another bundle in, prefixing each of its names with
    /// `prefix` and a dot (e.g. `encoder.w`). Used to pack several
    /// cells' weights into one file.
    pub fn merge_prefixed(&mut self, prefix: &str, other: &WeightBundle) {
        for (name, m) in other.iter() {
            self.insert(format!("{prefix}.{name}"), m.clone());
        }
    }

    /// Extracts the sub-bundle whose names start with `prefix` and a
    /// dot, stripping the prefix.
    pub fn sub_bundle(&self, prefix: &str) -> WeightBundle {
        let mut out = WeightBundle::new();
        let pat = format!("{prefix}.");
        for (name, m) in self.iter() {
            if let Some(rest) = name.strip_prefix(&pat) {
                out.insert(rest, m.clone());
            }
        }
        out
    }

    /// Saves the bundle to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TensorError> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut f)
    }

    /// Loads a bundle from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, TensorError> {
        let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
        Self::read_from(&mut f)
    }
}

fn read_u32(r: &mut impl Read) -> Result<u32, TensorError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::xavier_uniform;

    #[test]
    fn round_trip_in_memory() {
        let mut b = WeightBundle::new();
        b.insert("w", xavier_uniform(4, 8, 1));
        b.insert("bias", Matrix::zeros(1, 8));
        let mut buf = Vec::new();
        b.write_to(&mut buf).unwrap();
        let b2 = WeightBundle::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(b, b2);
    }

    #[test]
    fn rejects_bad_magic() {
        let buf = b"XXXX\x00\x00\x00\x00".to_vec();
        let err = WeightBundle::read_from(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, TensorError::Corrupt(_)));
    }

    #[test]
    fn rejects_truncated_payload() {
        let mut b = WeightBundle::new();
        b.insert("w", Matrix::filled(2, 2, 1.5));
        let mut buf = Vec::new();
        b.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(WeightBundle::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn empty_bundle_round_trips() {
        let b = WeightBundle::new();
        let mut buf = Vec::new();
        b.write_to(&mut buf).unwrap();
        let b2 = WeightBundle::read_from(&mut buf.as_slice()).unwrap();
        assert!(b2.is_empty());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("bm_tensor_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weights.bmt");
        let mut b = WeightBundle::new();
        b.insert("embed", xavier_uniform(16, 4, 9));
        b.save(&path).unwrap();
        let b2 = WeightBundle::load(&path).unwrap();
        assert_eq!(b, b2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn prefix_merge_and_extract_round_trip() {
        let mut inner = WeightBundle::new();
        inner.insert("w", Matrix::filled(2, 2, 1.0));
        inner.insert("b", Matrix::zeros(1, 2));
        let mut packed = WeightBundle::new();
        packed.merge_prefixed("encoder", &inner);
        packed.merge_prefixed("decoder", &inner);
        assert_eq!(packed.len(), 4);
        assert_eq!(packed.sub_bundle("encoder"), inner);
        assert_eq!(packed.sub_bundle("decoder"), inner);
        assert!(packed.sub_bundle("nothing").is_empty());
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut b = WeightBundle::new();
        b.insert("z", Matrix::zeros(1, 1));
        b.insert("a", Matrix::zeros(1, 1));
        let names: Vec<_> = b.iter().map(|(n, _)| n.to_string()).collect();
        assert_eq!(names, vec!["a", "z"]);
    }
}
