//! Seeded weight initialization.
//!
//! Inference serves *pre-trained* weights; for a reproduction the actual
//! values only need to be deterministic and numerically well-behaved, so
//! all models initialize with seeded Xavier-uniform weights.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::matrix::Matrix;

/// Weight initialization schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightInit {
    /// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// All zeros (used for biases).
    Zeros,
    /// All ones.
    Ones,
}

impl WeightInit {
    /// Materializes a `(rows, cols)` matrix using this scheme and the RNG.
    pub fn init(self, rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
        match self {
            WeightInit::XavierUniform => {
                let a = (6.0 / (rows + cols) as f32).sqrt();
                let data = (0..rows * cols).map(|_| rng.gen_range(-a..=a)).collect();
                Matrix::from_vec(rows, cols, data)
            }
            WeightInit::Zeros => Matrix::zeros(rows, cols),
            WeightInit::Ones => Matrix::filled(rows, cols, 1.0),
        }
    }
}

/// Convenience: a seeded Xavier-uniform matrix.
pub fn xavier_uniform(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    WeightInit::XavierUniform.init(rows, cols, &mut rng)
}

/// A zero matrix with the same shape as `m`.
pub fn zeros_like(m: &Matrix) -> Matrix {
    Matrix::zeros(m.rows(), m.cols())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_is_deterministic_per_seed() {
        let a = xavier_uniform(8, 8, 42);
        let b = xavier_uniform(8, 8, 42);
        let c = xavier_uniform(8, 8, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn xavier_respects_bound() {
        let m = xavier_uniform(16, 16, 7);
        let a = (6.0_f32 / 32.0).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= a));
        // Not degenerate: some spread exists.
        let max = m.as_slice().iter().cloned().fold(f32::MIN, f32::max);
        let min = m.as_slice().iter().cloned().fold(f32::MAX, f32::min);
        assert!(max > 0.0 && min < 0.0);
    }

    #[test]
    fn zeros_and_ones_schemes() {
        let mut rng = StdRng::seed_from_u64(0);
        let z = WeightInit::Zeros.init(2, 3, &mut rng);
        let o = WeightInit::Ones.init(2, 3, &mut rng);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        assert!(o.as_slice().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn zeros_like_matches_shape() {
        let m = xavier_uniform(3, 5, 1);
        let z = zeros_like(&m);
        assert_eq!(z.shape(), (3, 5));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
    }
}
