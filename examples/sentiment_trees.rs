//! TreeLSTM sentiment classification over parse trees (paper §2.1).
//!
//! Padding cannot batch trees, which is why the paper's TreeLSTM
//! comparison is against dynamic graph batching. BatchMaker batches the
//! *cells*: all ready leaf cells across requests form leaf tasks, then
//! internal cells batch level by level as their children complete
//! (§4.4's worked example). This demo classifies random parse trees with
//! a toy readout over the root hidden state.
//!
//! Run with: `cargo run --release --example sentiment_trees`

use std::sync::Arc;

use bm_core::{Runtime, RuntimeOptions};
use bm_model::{reference, Model, RequestInput, TreeLstm, TreeLstmConfig, TreeShape};
use bm_workload::{Dataset, LengthDistribution};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Toy sentiment readout: the sign of the mean of the root hidden state.
fn sentiment(h: &[f32]) -> &'static str {
    let mean: f32 = h.iter().sum::<f32>() / h.len() as f32;
    if mean >= 0.0 {
        "positive"
    } else {
        "negative"
    }
}

fn main() {
    let model = Arc::new(TreeLstm::new(TreeLstmConfig {
        embed_size: 32,
        hidden_size: 32,
        vocab: 500,
        ..Default::default()
    }));
    let runtime = Runtime::start(
        Arc::clone(&model) as Arc<dyn Model>,
        RuntimeOptions::new().workers(1),
    );

    // A mix of random parse trees plus the paper's complete 16-leaf
    // tree (§4.4's running example).
    let ds = Dataset::trees(64, LengthDistribution::treebank(), 500, 99);
    let mut rng = StdRng::seed_from_u64(3);
    let mut inputs: Vec<RequestInput> = (0..10).map(|_| ds.sample(&mut rng).clone()).collect();
    inputs.push(RequestInput::Tree(TreeShape::complete(16, 500)));

    let handles: Vec<_> = inputs
        .iter()
        .map(|i| runtime.submit_request(i).expect("submit"))
        .collect();
    for (input, handle) in inputs.iter().zip(handles) {
        let served = handle.wait().completed();
        let expect = reference::execute_graph(&model.unfold(input), model.registry());
        assert_eq!(served.result, expect, "tree result must match reference");
        let RequestInput::Tree(shape) = input else {
            unreachable!()
        };
        let root_h = served.result.final_h().expect("root state");
        println!(
            "tree: {:2} leaves, height {:2}, {:2} cells -> {} ({} us)",
            shape.leaf_count(),
            shape.height(),
            served.result.executed_count(),
            sentiment(root_h),
            served.timing.completion_us - served.timing.arrival_us,
        );
    }
    runtime.shutdown();
    println!("all tree results verified against the unbatched reference");
}
