//! Cellular batching vs graph batching, side by side in simulation.
//!
//! Runs a compact version of the paper's Figure 7 experiment: the same
//! Poisson-arrival LSTM workload served by BatchMaker and by an
//! MXNet-style padding/bucketing baseline on one simulated V100, and
//! prints the latency/throughput table.
//!
//! Run with: `cargo run --release --example latency_comparison`

use std::sync::Arc;

use bm_harness::experiments::serving::{sweep, sweep_table};
use bm_harness::experiments::Scale;
use bm_harness::{ServerFactory, SystemKind};
use bm_model::{LstmLm, LstmLmConfig};
use bm_workload::{Dataset, LengthDistribution};

fn main() {
    let model = Arc::new(LstmLm::new(LstmLmConfig {
        max_batch: 512,
        ..Default::default()
    }));
    let factory = ServerFactory::paper(model);
    let ds = Dataset::lstm(5_000, LengthDistribution::wmt15(), 900, 1);

    let rates = [2_000.0, 8_000.0, 14_000.0, 20_000.0];
    let points = sweep(
        &factory,
        &[
            SystemKind::BatchMaker,
            SystemKind::Mxnet { bucket_width: 10 },
        ],
        &ds,
        &rates,
        1,
        Scale::Quick,
    );
    let table = sweep_table(
        "Cellular vs graph batching (LSTM, WMT-15-like, 1 simulated V100)",
        &points,
    );
    println!("{}", table.to_markdown());
    println!(
        "BatchMaker keeps p90 latency flat by letting new requests join \
         in-flight batches; the padding baseline queues whole bucket \
         batches and its latency climbs with load."
    );
}
