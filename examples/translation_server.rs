//! A Seq2Seq translation server under staggered load.
//!
//! Demonstrates the paper's core claim end to end: requests arriving at
//! different times continuously *join* the execution of earlier requests
//! (no graph-batching synchronization barrier), decoders run with
//! priority over encoders, and each request returns the moment its last
//! decode step completes.
//!
//! Run with: `cargo run --release --example translation_server`

use std::sync::Arc;
use std::time::Duration;

use bm_core::{Runtime, RuntimeOptions};
use bm_model::{Model, RequestInput, Seq2Seq, Seq2SeqConfig};
use bm_workload::{Dataset, LengthDistribution};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let model = Arc::new(Seq2Seq::new(Seq2SeqConfig {
        embed_size: 48,
        hidden_size: 48,
        vocab: 300,
        ..Default::default()
    }));
    let runtime = Runtime::start(
        Arc::clone(&model) as Arc<dyn Model>,
        RuntimeOptions::new().workers(2),
    );

    // Sample "German" sentences of varying length and issue them with
    // small gaps, as a live service would see.
    let ds = Dataset::seq2seq(64, LengthDistribution::wmt15_clipped(20), 300, 42);
    let mut rng = StdRng::seed_from_u64(7);
    let inputs: Vec<RequestInput> = (0..16).map(|_| ds.sample(&mut rng).clone()).collect();

    let mut handles = Vec::new();
    for input in &inputs {
        handles.push((
            input.clone(),
            runtime.submit_request(input).expect("submit"),
        ));
        // Staggered arrivals: later requests join mid-flight batches.
        std::thread::sleep(Duration::from_micros(300));
    }

    let mut total_latency_us = 0u64;
    for (input, handle) in handles {
        let served = handle.wait().completed();
        let RequestInput::Pair { src, decode_len } = &input else {
            unreachable!("seq2seq dataset yields pairs");
        };
        let decoded = served.result.decoded_tokens();
        assert_eq!(decoded.len(), *decode_len, "fixed-length decode");
        let lat = served.timing.completion_us - served.timing.arrival_us;
        total_latency_us += lat;
        println!(
            "src len {:2} -> decoded {:2} tokens in {:5} us: {:?}...",
            src.len(),
            decoded.len(),
            lat,
            &decoded[..decoded.len().min(6)],
        );
    }
    println!(
        "mean latency: {} us over {} requests",
        total_latency_us / inputs.len() as u64,
        inputs.len()
    );
    runtime.shutdown();
}
