//! Quickstart: serve LSTM inference requests through BatchMaker.
//!
//! Builds a small LSTM language model, starts the threaded runtime
//! (manager + workers, §4.2 Figure 6), submits a handful of sentences
//! concurrently, and verifies every result against the unbatched
//! reference executor.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use bm_core::{Runtime, RuntimeOptions};
use bm_model::{reference, LstmLm, LstmLmConfig, Model, RequestInput};

fn main() {
    // A pre-trained model would load weights from disk
    // (`bm_tensor::io::WeightBundle`); here we use seeded weights.
    let model = Arc::new(LstmLm::new(LstmLmConfig {
        embed_size: 64,
        hidden_size: 64,
        vocab: 1000,
        ..Default::default()
    }));

    // Two workers stand in for two GPUs.
    let runtime = Runtime::start(
        Arc::clone(&model) as Arc<dyn Model>,
        RuntimeOptions::new().workers(2),
    );

    // "system research is", "kids love dogs", ... as token ids.
    let sentences: Vec<RequestInput> = vec![
        RequestInput::Sequence(vec![101, 202, 303]),
        RequestInput::Sequence(vec![4, 5]),
        RequestInput::Sequence(vec![7, 8, 9, 10, 11, 12]),
        RequestInput::Sequence(vec![42]),
    ];

    // Submit everything at once: cellular batching will batch the
    // chains' steps together and return each request as soon as its
    // last cell finishes.
    let handles: Vec<_> = sentences
        .iter()
        .map(|s| runtime.submit_request(s).expect("submit"))
        .collect();

    for (input, handle) in sentences.iter().zip(handles) {
        let served = handle.wait().completed();
        let expect = reference::execute_graph(&model.unfold(input), model.registry());
        assert_eq!(served.result, expect, "batched result must match reference");

        let h = served.result.final_h().expect("final state");
        let t = served.timing;
        println!(
            "request {:?}: {} cells, latency {} us, h[0..4] = {:.3?}",
            input,
            served.result.executed_count(),
            t.completion_us - t.arrival_us,
            &h[..4],
        );
    }

    runtime.shutdown();
    println!("all results verified against the unbatched reference");
}
