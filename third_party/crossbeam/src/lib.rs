//! Offline stand-in for `crossbeam`, providing the `channel` module the
//! workspace uses: multi-producer single-consumer channels, bounded and
//! unbounded, built on `Mutex` + `Condvar`.
//!
//! The semantics mirror `crossbeam-channel` for the subset exercised
//! here: cloneable senders, blocking `send`/`recv`, non-blocking
//! `try_send`/`try_recv`, `recv_timeout`, and disconnect detection in
//! both directions. Throughput is far below the real crate's lock-free
//! queues, but the serving runtime batches aggressively enough that the
//! channel is never the bottleneck in tests.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// The receiver has been dropped.
        Disconnected(T),
    }

    impl<T> std::fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("TrySendError::Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("TrySendError::Disconnected(..)"),
            }
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone
    /// and the queue is empty.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message currently queued.
        Empty,
        /// All senders dropped and the queue is empty.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline elapsed with no message.
        Timeout,
        /// All senders dropped and the queue is empty.
        Disconnected,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receiver_alive: bool,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        /// Capacity for bounded channels; `None` is unbounded.
        cap: Option<usize>,
        /// Signalled when a message is pushed or the last sender drops.
        not_empty: Condvar,
        /// Signalled when a message is popped or the receiver drops.
        not_full: Condvar,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded channel holding at most `cap` messages.
    /// Zero-capacity rendezvous channels are not supported; `cap` must
    /// be positive.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "bounded channel capacity must be positive");
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receiver_alive: true,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued (or the receiver drops).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().expect("channel lock");
            loop {
                if !st.receiver_alive {
                    return Err(SendError(value));
                }
                match self.chan.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.chan.not_full.wait(st).expect("channel lock");
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        /// Enqueues without blocking; fails if full or disconnected.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.chan.state.lock().expect("channel lock");
            if !st.receiver_alive {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.chan.cap {
                if st.queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.state.lock().expect("channel lock").queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().expect("channel lock").senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().expect("channel lock");
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives (or all senders drop).
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().expect("channel lock");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.not_empty.wait(st).expect("channel lock");
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.chan.state.lock().expect("channel lock");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .chan
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .expect("channel lock");
                st = guard;
                if res.timed_out() && st.queue.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.state.lock().expect("channel lock");
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.state.lock().expect("channel lock").queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().expect("channel lock");
            st.receiver_alive = false;
            drop(st);
            self.chan.not_full.notify_all();
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn unbounded_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn recv_fails_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(9).unwrap();
            drop(tx2);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_receiver_drops() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }

        #[test]
        fn bounded_try_send_reports_full() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert_eq!(rx.recv(), Ok(1));
            tx.try_send(3).unwrap();
        }

        #[test]
        fn bounded_send_blocks_until_capacity_frees() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let h = std::thread::spawn(move || tx.send(2));
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            h.join().unwrap().unwrap();
        }

        #[test]
        fn recv_timeout_times_out_and_then_delivers() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7u32).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        }

        #[test]
        fn cross_thread_mpsc() {
            let (tx, rx) = unbounded();
            let handles: Vec<_> = (0..4u64)
                .map(|i| {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        for j in 0..100u64 {
                            tx.send(i * 1000 + j).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(got.len(), 400);
        }
    }
}
