//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! reimplements the subset of proptest the workspace's property tests
//! use: the [`strategy::Strategy`] trait with `prop_map`,
//! `prop_flat_map`, `prop_recursive` and `boxed`; range and tuple
//! strategies; [`collection::vec`]; [`arbitrary::any`]; the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!` and `prop_oneof!` macros; and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from upstream: generation is seeded deterministically per
//! test (derived from the test name), there is **no shrinking** — a
//! failing case reports the case index and seed instead of a minimized
//! input — and the default case count honours `PROPTEST_CASES` with a
//! smaller fallback (64) suited to CI without persisted regressions.

#[doc(hidden)]
pub use rand as __rand;

pub mod test_runner {
    /// Configuration for one `proptest!` test.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// A failed property within one generated case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic per-test, per-case RNG seed.
    pub fn case_seed(test_name: &str, case: u32) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        test_name.hash(&mut h);
        h.finish() ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A generator of random values of one type.
    ///
    /// Unlike upstream proptest there is no shrinking: a strategy is
    /// just a pure function of the RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// builds from it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Recursive strategies: `self` generates leaves, `recurse`
        /// wraps an inner strategy into one generating one more level.
        /// `_desired_size` and `_expected_branch_size` are accepted for
        /// signature compatibility and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
        {
            Recursive {
                base: self.boxed(),
                recurse: Arc::new(move |inner| recurse(inner).boxed()),
                depth,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut StdRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_recursive`].
    pub struct Recursive<T> {
        base: BoxedStrategy<T>,
        recurse: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
        depth: u32,
    }

    impl<T> Clone for Recursive<T> {
        fn clone(&self) -> Self {
            Recursive {
                base: self.base.clone(),
                recurse: Arc::clone(&self.recurse),
                depth: self.depth,
            }
        }
    }

    impl<T: 'static> Strategy for Recursive<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            // Pick a nesting level in [0, depth], biased toward shallow
            // structures like upstream's probabilistic descent.
            let mut levels = 0;
            while levels < self.depth && rng.gen_bool(0.5) {
                levels += 1;
            }
            let mut s = self.base.clone();
            for _ in 0..levels {
                s = (self.recurse)(s);
            }
            s.generate(rng)
        }
    }

    /// Uniform choice between strategies of one value type (the
    /// `prop_oneof!` backing type).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec()`]: a fixed size or a range.
    pub trait IntoSizeRange {
        fn pick_len(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn pick_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Generates `Vec`s of values from `element`, with length drawn
    /// from `size`.
    pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.pick_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen::<u64>() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

/// The usual imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Asserts within a `proptest!` body; failure aborts the case with a
/// message instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion within a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} vs {:?})", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Uniform choice among strategies generating the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of test functions whose
/// parameters are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            config = <$crate::test_runner::ProptestConfig as ::std::default::Default>::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let seed = $crate::test_runner::case_seed(stringify!($name), case);
                    let mut rng = <$crate::__rand::rngs::StdRng
                        as $crate::__rand::SeedableRng>::seed_from_u64(seed);
                    $(let $pat =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = (move || -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{} (seed {:#x}): {}",
                            stringify!($name),
                            case,
                            config.cases,
                            seed,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5usize..9), c in 0.0f64..1.0) {
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b));
            prop_assert!((0.0..1.0).contains(&c));
        }

        #[test]
        fn vec_lengths(v in collection::vec(0u8..4, 2..6), w in collection::vec(0u8..4, 3)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert_eq!(w.len(), 3);
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![
            (0u32..5).prop_map(|v| v as u64),
            any::<u64>().prop_map(|v| v | 1 << 32),
        ]) {
            prop_assert!(!(5..(1u64 << 32)).contains(&x));
        }

        #[test]
        fn flat_map_dependent((n, v) in (1usize..6).prop_flat_map(|n| {
            (Just(n), collection::vec(0u8..255, n))
        })) {
            prop_assert_eq!(v.len(), n);
        }
    }

    #[derive(Debug, Clone)]
    enum Tree {
        Leaf(#[allow(dead_code)] u32),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn recursive_respects_depth(t in (0u32..10).prop_map(Tree::Leaf).prop_recursive(
            3, 8, 2,
            |inner| (inner.clone(), inner)
                .prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r))),
        )) {
            prop_assert!(depth(&t) <= 3);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = crate::test_runner::case_seed("t", 3);
        let b = crate::test_runner::case_seed("t", 3);
        assert_eq!(a, b);
        assert_ne!(a, crate::test_runner::case_seed("t", 4));
    }
}
