//! Offline stand-in for `criterion`.
//!
//! Implements the group/bench API surface the workspace's benches use
//! with a deliberately simple harness: each benchmark warms up briefly,
//! then times batches of iterations for a fixed budget and reports the
//! median per-iteration time (plus derived throughput when declared).
//! No statistics, plots or saved baselines — the point is that
//! `cargo bench` produces comparable numbers offline and `cargo test`
//! compiles the bench targets.

use std::time::{Duration, Instant};

/// Declared work per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id like `"name/param"`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the benchmark closure; runs the measured code.
pub struct Bencher {
    /// Measured per-iteration durations, one per sample batch.
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Times `routine`, storing per-iteration samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-batch iteration sizing: aim each batch at
        // ~2 ms so cheap routines amortize timer overhead.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < Duration::from_millis(20) {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / warm_iters.max(1) as u128;
        let batch = ((2_000_000 / per_iter.max(1)) as u64).clamp(1, 1_000_000);

        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }

    fn median(&self) -> Duration {
        let mut s = self.samples.clone();
        if s.is_empty() {
            return Duration::ZERO;
        }
        s.sort();
        s[s.len() / 2]
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_count: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1);
        self
    }

    /// Declares per-iteration work for derived throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_count,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_count,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let med = b.median();
        let ns = med.as_nanos().max(1);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:.3} Melem/s", n as f64 / ns as f64 * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  {:.3} MiB/s",
                    n as f64 / ns as f64 * 1e9 / (1 << 20) as f64
                )
            }
            None => String::new(),
        };
        println!("{}/{}: median {:?}{}", self.name, id.id, med, rate);
    }

    /// Ends the group (upstream emits summary output here; no-op).
    pub fn finish(self) {}
}

/// The harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_count: 10,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("bench");
        g.bench_function(name, f);
        self
    }
}

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` runs bench binaries with harness
            // flags; only actually benchmark under `cargo bench`.
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}
