//! Offline stand-in for `parking_lot`: non-poisoning `Mutex`/`RwLock`
//! wrappers over `std::sync`. Semantics match the subset the workspace
//! relies on — `lock()` returns a guard directly (a poisoned lock is
//! recovered rather than propagated, matching parking_lot's
//! no-poisoning contract).

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
