//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand`'s API it actually uses: the [`Rng`]
//! and [`SeedableRng`] traits, [`rngs::StdRng`], `gen`, `gen_bool` and
//! `gen_range` over the integer/float ranges that appear in this
//! repository. The generator is SplitMix64 — deterministic, seedable and
//! statistically adequate for workload synthesis and tests; it makes no
//! cryptographic claims, exactly like the upstream `StdRng` contract
//! ("a strong RNG, not reproducible across versions").

use std::ops::{Range, RangeInclusive};

/// Types that can be drawn uniformly from a range (`rand::distributions::
/// uniform::SampleUniform` stand-in).
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start() <= self.end(), "empty range in gen_range");
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = (hi_w - lo_w + if inclusive { 1 } else { 0 }) as u128;
                debug_assert!(span > 0);
                // Multiply-shift bounded draw (Lemire); bias is < 2^-64,
                // irrelevant for workload generation.
                let x = rng.next_u64() as u128;
                let v = (x * span) >> 64;
                (lo_w + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        lo + (hi - lo) * unit_f64(rng.next_u64()) as f32
    }
}

/// Maps a u64 to [0, 1) with 53 bits of precision.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types drawable via [`Rng::gen`] (`Standard` distribution stand-in).
pub trait Standard: Sized {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The raw generator interface (object-safe core).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Self: Sized,
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction (`rand::SeedableRng` stand-in).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-scramble so nearby seeds diverge immediately.
            let mut s = StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            };
            s.next_u64();
            s
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_draws_cover_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
